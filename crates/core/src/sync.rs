//! Ranked lock wrappers: runtime enforcement of the store's lock order.
//!
//! The sharded store documents a single global lock order (see the `store`
//! module docs and README § "Lock discipline & static checks"):
//!
//! 1. store directory `RwLock` (rank 0)
//! 2. primer-allocator `Mutex` (rank 1)
//! 3. data-shard `Mutex`es in ascending partition-id order (rank `2 + pid`)
//! 4. the dedicated-log shard `Mutex` last among store locks
//! 5. serving-layer front-end `Mutex`, then the scheduler `Mutex`
//! 6. the write-ahead journal `Mutex` very last, so any commit section can
//!    append its durability record before releasing its locks
//!
//! [`RankedMutex`] and [`RankedRwLock`] wrap `std::sync` primitives and, in
//! debug/test builds, keep a thread-local stack of held ranks. Acquiring a
//! lock whose rank is less than or equal to the deepest rank already held by
//! the current thread panics immediately, naming **both** acquisition sites
//! (the offending call and the site that took the already-held lock). Any
//! cycle between two threads requires at least one thread to acquire against
//! the ranking, so every potential deadlock in the documented hierarchy is
//! converted into a deterministic panic on the first violating test run —
//! no actual contention required.
//!
//! In release builds (`cfg(not(debug_assertions))`) the wrappers store no
//! rank metadata and perform no tracking: `lock()` compiles down to the
//! plain `std::sync` call, and the wrapper types have the same size as the
//! primitives they wrap (asserted by the `lockdep` integration test).
//!
//! Poisoning is passed through untouched: `lock()`/`read()`/`write()` return
//! [`LockResult`] exactly like `std::sync`, so both the store's fail-fast
//! `.expect("...")` idiom and the service layer's
//! `.unwrap_or_else(PoisonError::into_inner)` recovery idiom keep working.
//!
//! Because the serving layer parks scheduler threads on condvars *while
//! logically holding* the scheduler lock, [`RankedMutexGuard`] offers
//! [`RankedMutexGuard::wait_on`] and [`RankedMutexGuard::wait_timeout_on`]:
//! they release the OS mutex for the duration of the wait (as
//! `Condvar::wait` requires) but keep the rank entry on the held stack, so
//! the lock discipline is judged as if the lock were held throughout —
//! which it logically is.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{
    Condvar, LockResult, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
    WaitTimeoutResult,
};
use std::time::Duration;

/// Position of a lock in the documented global acquisition order.
///
/// Ranks are totally ordered; a thread may only acquire a lock whose rank is
/// *strictly greater* than every rank it already holds. Data shards use
/// [`LockRank::shard`] so that ascending-pid acquisition (the batch and
/// log-compaction paths) is expressed directly as ascending ranks.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockRank(u64);

/// Data-shard ranks start here (`2 + pid`), above the directory and the
/// primer allocator.
const SHARD_BASE: u64 = 2;
/// The log shard ranks above every possible data shard regardless of the
/// partition id it happens to occupy.
const LOG_BASE: u64 = 1 << 32;

impl LockRank {
    /// The store directory `RwLock` — always first.
    pub const DIRECTORY: LockRank = LockRank(0);
    /// The primer-pair allocator `Mutex` — after the directory.
    pub const PRIMER_ALLOC: LockRank = LockRank(1);
    /// The dedicated-log shard `Mutex` — last among store locks, whatever
    /// partition id the log occupies.
    pub const LOG_SHARD: LockRank = LockRank(LOG_BASE);
    /// The serving-layer front-end `Mutex` — after all store locks.
    pub const SERVICE_FRONT: LockRank = LockRank(LOG_BASE + 1);
    /// The serving-layer scheduler `Mutex` — after the front end.
    pub const SERVICE_SCHED: LockRank = LockRank(LOG_BASE + 2);
    /// The write-ahead journal `Mutex` — last of all ranks, so a commit may
    /// append its record while still inside the critical section of any
    /// store (or serving-layer) lock. Nothing is ever acquired under it.
    pub const JOURNAL: LockRank = LockRank(LOG_BASE + 3);

    /// Rank of the data shard for partition `pid`: `2 + pid`, so ascending
    /// partition ids are ascending ranks.
    pub fn shard(pid: usize) -> LockRank {
        let rank = SHARD_BASE + pid as u64;
        assert!(
            rank < LOG_BASE,
            "partition id {pid} exceeds the rankable shard range"
        );
        LockRank(rank)
    }
}

impl fmt::Display for LockRank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            0 => write!(f, "directory (rank 0)"),
            1 => write!(f, "primer-alloc (rank 1)"),
            n if n == LOG_BASE => write!(f, "log-shard (rank last-of-store)"),
            n if n == LOG_BASE + 1 => write!(f, "service-front (rank after store)"),
            n if n == LOG_BASE + 2 => write!(f, "service-sched (rank after front)"),
            n if n == LOG_BASE + 3 => write!(f, "journal (rank last)"),
            n => write!(f, "shard(pid={}) (rank 2+pid = {n})", n - SHARD_BASE),
        }
    }
}

impl fmt::Debug for LockRank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Debug/test-only lock-order tracking: a thread-local stack of held ranks.
///
/// Because acquisition is only ever permitted in strictly ascending rank
/// order, the stack stays sorted even when guards are released out of
/// order (removal preserves relative order), so the deepest held rank is
/// always the last entry.
#[cfg(debug_assertions)]
mod lockdep {
    use super::LockRank;
    use std::cell::RefCell;
    use std::panic::Location;

    struct Held {
        rank: LockRank,
        name: &'static str,
        site: &'static Location<'static>,
    }

    thread_local! {
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    }

    /// Proof that one ranked lock is held by the current thread; dropping it
    /// pops the matching entry from the held stack.
    pub(super) struct HeldToken {
        rank: LockRank,
        site: &'static Location<'static>,
    }

    /// Record an acquisition, panicking if `rank` does not strictly exceed
    /// the deepest rank this thread already holds.
    #[track_caller]
    pub(super) fn acquire(rank: LockRank, name: &'static str) -> HeldToken {
        let site = Location::caller();
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(top) = held.last() {
                if rank <= top.rank {
                    panic!(
                        "lock-order violation: acquiring `{name}` [{rank}] at {site} while \
                         holding `{held_name}` [{held_rank}] acquired at {held_site}; the \
                         documented order is directory -> primer-alloc -> data shards \
                         (ascending pid) -> log shard -> service front -> service sched \
                         (README \"Lock discipline & static checks\")",
                        held_name = top.name,
                        held_rank = top.rank,
                        held_site = top.site,
                    );
                }
            }
            held.push(Held { rank, name, site });
        });
        HeldToken { rank, site }
    }

    impl Drop for HeldToken {
        fn drop(&mut self) {
            // `try_with`: guards dropped during thread-local teardown must
            // not panic. Remove the last matching entry — guards may be
            // released in any order.
            let _ = HELD.try_with(|held| {
                let mut held = held.borrow_mut();
                if let Some(idx) = held
                    .iter()
                    .rposition(|h| h.rank == self.rank && std::ptr::eq(h.site, self.site))
                {
                    held.remove(idx);
                }
            });
        }
    }
}

/// A `Mutex` that participates in the documented lock order.
///
/// Debug/test builds check every `lock()` against the current thread's held
/// ranks; release builds are a zero-overhead passthrough to [`Mutex`].
pub struct RankedMutex<T> {
    #[cfg(debug_assertions)]
    rank: LockRank,
    #[cfg(debug_assertions)]
    name: &'static str,
    // lint: allow(lock-rank): rank is a runtime parameter of the wrapper itself
    inner: Mutex<T>,
}

impl<T> RankedMutex<T> {
    /// Wrap `value` in a mutex at position `rank` of the global order.
    /// `name` labels the lock in violation panics.
    pub fn new(rank: LockRank, name: &'static str, value: T) -> RankedMutex<T> {
        #[cfg(not(debug_assertions))]
        let _ = (rank, name);
        RankedMutex {
            #[cfg(debug_assertions)]
            rank,
            #[cfg(debug_assertions)]
            name,
            inner: Mutex::new(value),
        }
    }

    /// Acquire the mutex, first checking (in debug builds) that its rank
    /// strictly exceeds every rank this thread already holds. Poisoning is
    /// reported exactly as by [`Mutex::lock`].
    #[track_caller]
    pub fn lock(&self) -> LockResult<RankedMutexGuard<'_, T>> {
        #[cfg(debug_assertions)]
        let token = Some(lockdep::acquire(self.rank, self.name));
        match self.inner.lock() {
            Ok(inner) => Ok(RankedMutexGuard {
                inner: Some(inner),
                #[cfg(debug_assertions)]
                token,
            }),
            Err(poisoned) => Err(PoisonError::new(RankedMutexGuard {
                inner: Some(poisoned.into_inner()),
                #[cfg(debug_assertions)]
                token,
            })),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }

    /// Whether a holder panicked; see [`Mutex::is_poisoned`].
    pub fn is_poisoned(&self) -> bool {
        self.inner.is_poisoned()
    }
}

impl<T: fmt::Debug> fmt::Debug for RankedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.inner, f)
    }
}

/// Result of [`RankedMutexGuard::wait_timeout_on`], mirroring
/// [`Condvar::wait_timeout`]: the reacquired guard plus whether the wait
/// timed out, wrapped in the usual poison-carrying [`LockResult`].
pub type WaitTimeoutLockResult<'a, T> = LockResult<(RankedMutexGuard<'a, T>, WaitTimeoutResult)>;

/// Guard returned by [`RankedMutex::lock`]. Dropping it releases the mutex
/// and pops the rank from the thread's held stack.
pub struct RankedMutexGuard<'a, T> {
    /// Always `Some` while the guard is live; taken only by the consuming
    /// condvar-wait helpers, which rebuild a guard around the reacquired
    /// inner guard. (`Option<MutexGuard>` is niche-optimized: same size.)
    inner: Option<MutexGuard<'a, T>>,
    #[cfg(debug_assertions)]
    token: Option<lockdep::HeldToken>,
}

impl<'a, T> RankedMutexGuard<'a, T> {
    /// Atomically release the mutex and park on `condvar`, like
    /// [`Condvar::wait`]. The rank entry stays on the held stack for the
    /// duration: the lock is logically held across the wait.
    pub fn wait_on(mut self, condvar: &Condvar) -> LockResult<RankedMutexGuard<'a, T>> {
        let inner = self.inner.take().expect("guard present");
        #[cfg(debug_assertions)]
        let token = self.token.take();
        drop(self);
        match condvar.wait(inner) {
            Ok(inner) => Ok(RankedMutexGuard {
                inner: Some(inner),
                #[cfg(debug_assertions)]
                token,
            }),
            Err(poisoned) => Err(PoisonError::new(RankedMutexGuard {
                inner: Some(poisoned.into_inner()),
                #[cfg(debug_assertions)]
                token,
            })),
        }
    }

    /// Timed variant of [`RankedMutexGuard::wait_on`], like
    /// [`Condvar::wait_timeout`].
    pub fn wait_timeout_on(
        mut self,
        condvar: &Condvar,
        dur: Duration,
    ) -> WaitTimeoutLockResult<'a, T> {
        let inner = self.inner.take().expect("guard present");
        #[cfg(debug_assertions)]
        let token = self.token.take();
        drop(self);
        match condvar.wait_timeout(inner, dur) {
            Ok((inner, timed_out)) => Ok((
                RankedMutexGuard {
                    inner: Some(inner),
                    #[cfg(debug_assertions)]
                    token,
                },
                timed_out,
            )),
            Err(poisoned) => {
                let (inner, timed_out) = poisoned.into_inner();
                Err(PoisonError::new((
                    RankedMutexGuard {
                        inner: Some(inner),
                        #[cfg(debug_assertions)]
                        token,
                    },
                    timed_out,
                )))
            }
        }
    }
}

impl<T> Deref for RankedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T> DerefMut for RankedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// An `RwLock` that participates in the documented lock order.
///
/// Both `read()` and `write()` occupy the same rank: the order constrains
/// *which* lock may be taken next, not the sharing mode. In particular a
/// thread must not re-enter `read()` while already holding this lock — a
/// recursive read deadlocks against a queued writer on some platforms, and
/// the detector treats it as a violation (equal rank).
pub struct RankedRwLock<T> {
    #[cfg(debug_assertions)]
    rank: LockRank,
    #[cfg(debug_assertions)]
    name: &'static str,
    // lint: allow(lock-rank): rank is a runtime parameter of the wrapper itself
    inner: RwLock<T>,
}

impl<T> RankedRwLock<T> {
    /// Wrap `value` in an rwlock at position `rank` of the global order.
    pub fn new(rank: LockRank, name: &'static str, value: T) -> RankedRwLock<T> {
        #[cfg(not(debug_assertions))]
        let _ = (rank, name);
        RankedRwLock {
            #[cfg(debug_assertions)]
            rank,
            #[cfg(debug_assertions)]
            name,
            inner: RwLock::new(value),
        }
    }

    /// Acquire shared access; rank-checked like [`RankedMutex::lock`].
    #[track_caller]
    pub fn read(&self) -> LockResult<RankedRwLockReadGuard<'_, T>> {
        #[cfg(debug_assertions)]
        let token = lockdep::acquire(self.rank, self.name);
        match self.inner.read() {
            Ok(inner) => Ok(RankedRwLockReadGuard {
                inner,
                #[cfg(debug_assertions)]
                _token: token,
            }),
            Err(poisoned) => Err(PoisonError::new(RankedRwLockReadGuard {
                inner: poisoned.into_inner(),
                #[cfg(debug_assertions)]
                _token: token,
            })),
        }
    }

    /// Acquire exclusive access; rank-checked like [`RankedMutex::lock`].
    #[track_caller]
    pub fn write(&self) -> LockResult<RankedRwLockWriteGuard<'_, T>> {
        #[cfg(debug_assertions)]
        let token = lockdep::acquire(self.rank, self.name);
        match self.inner.write() {
            Ok(inner) => Ok(RankedRwLockWriteGuard {
                inner,
                #[cfg(debug_assertions)]
                _token: token,
            }),
            Err(poisoned) => Err(PoisonError::new(RankedRwLockWriteGuard {
                inner: poisoned.into_inner(),
                #[cfg(debug_assertions)]
                _token: token,
            })),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }

    /// Whether a writer panicked; see [`RwLock::is_poisoned`].
    pub fn is_poisoned(&self) -> bool {
        self.inner.is_poisoned()
    }
}

impl<T: fmt::Debug> fmt::Debug for RankedRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.inner, f)
    }
}

/// Shared-access guard returned by [`RankedRwLock::read`].
pub struct RankedRwLockReadGuard<'a, T> {
    // Field order is drop order: release the OS lock, then pop the rank.
    inner: RwLockReadGuard<'a, T>,
    #[cfg(debug_assertions)]
    _token: lockdep::HeldToken,
}

impl<T> Deref for RankedRwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive-access guard returned by [`RankedRwLock::write`].
pub struct RankedRwLockWriteGuard<'a, T> {
    inner: RwLockWriteGuard<'a, T>,
    #[cfg(debug_assertions)]
    _token: lockdep::HeldToken,
}

impl<T> Deref for RankedRwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for RankedRwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}
