//! Update-placement layouts (§5.3, Figs. 6–8).

/// Where update patches live in the address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateLayout {
    /// Fig. 6: all updates from *all* partitions logged in one dedicated
    /// partition with its own primer pair. Reading any updated (or even
    /// clean!) block requires also reading the entire shared log.
    DedicatedLog,
    /// Fig. 7: updates share the data partition's address space, growing
    /// from the top while data grows from the bottom ("similar to how two
    /// stacks are placed in memory"). One PCR covers data + updates, but a
    /// block read must still scan the whole update region.
    TwoStacks,
    /// Fig. 8 (the paper's proposal): every data block is followed by
    /// version slots sharing its address prefix — the version base is the
    /// only difference — so a single precise PCR retrieves the block *and*
    /// its updates. `update_slots` is the number of provisioned slots
    /// (paper: 3); when they run out, the last slot holds a pointer into an
    /// overflow chain.
    Interleaved {
        /// Update slots provisioned per block (1..=3 with a 1-base version
        /// field).
        update_slots: u8,
    },
}

impl std::fmt::Display for UpdateLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateLayout::DedicatedLog => write!(f, "DedicatedLog"),
            UpdateLayout::TwoStacks => write!(f, "TwoStacks"),
            UpdateLayout::Interleaved { update_slots } => {
                write!(f, "Interleaved({update_slots})")
            }
        }
    }
}

impl UpdateLayout {
    /// The paper's layout: 3 update slots per block via one version base.
    pub fn paper_default() -> UpdateLayout {
        UpdateLayout::Interleaved { update_slots: 3 }
    }

    /// How many *encoding units* must be retrieved (amplified + sequenced)
    /// to read one block that has `block_updates` updates, in a partition
    /// holding `partition_updates` total updates, within a system holding
    /// `system_updates` total updates.
    ///
    /// This is the analytical core of the layout ablation: the §5.3
    /// discussion of why Fig. 6 and Fig. 7 are progressively better but
    /// only Fig. 8 makes retrieval cost independent of unrelated updates.
    pub fn retrieval_scope_units(
        &self,
        block_updates: u64,
        partition_updates: u64,
        system_updates: u64,
    ) -> u64 {
        match self {
            // Block + every update ever logged anywhere.
            UpdateLayout::DedicatedLog => 1 + system_updates,
            // Block + every update in this partition.
            UpdateLayout::TwoStacks => 1 + partition_updates,
            // Block + only its own updates.
            UpdateLayout::Interleaved { .. } => 1 + block_updates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaved_scope_is_independent_of_unrelated_updates() {
        let layout = UpdateLayout::paper_default();
        assert_eq!(layout.retrieval_scope_units(2, 1000, 100_000), 3);
        assert_eq!(layout.retrieval_scope_units(0, 1000, 100_000), 1);
    }

    #[test]
    fn two_stacks_pays_partition_updates() {
        assert_eq!(
            UpdateLayout::TwoStacks.retrieval_scope_units(2, 1000, 100_000),
            1001
        );
    }

    #[test]
    fn dedicated_log_pays_system_updates() {
        assert_eq!(
            UpdateLayout::DedicatedLog.retrieval_scope_units(2, 1000, 100_000),
            100_001
        );
    }

    #[test]
    fn layouts_are_strictly_ordered_when_updates_exist() {
        // §5.3's argument in one assertion.
        let (b, p, s) = (3u64, 500u64, 20_000u64);
        let ded = UpdateLayout::DedicatedLog.retrieval_scope_units(b, p, s);
        let two = UpdateLayout::TwoStacks.retrieval_scope_units(b, p, s);
        let int = UpdateLayout::paper_default().retrieval_scope_units(b, p, s);
        assert!(int < two && two < ded);
    }
}
