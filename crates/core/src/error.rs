//! Block-store error types.

use crate::layout::UpdateLayout;
use std::error::Error;
use std::fmt;

/// Errors surfaced by the block store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The partition id does not exist.
    UnknownPartition(usize),
    /// The block id is outside the partition's address space.
    BlockOutOfRange {
        /// Requested block.
        block: u64,
        /// Blocks available.
        capacity: u64,
    },
    /// The block has never been written.
    BlockNotWritten(u64),
    /// A file is too large for the partition's remaining blocks.
    FileTooLarge {
        /// Blocks needed.
        needed: u64,
        /// Blocks available.
        available: u64,
    },
    /// All version slots (and overflow space) for this block are exhausted.
    /// Carries enough context to diagnose the failure — and to decide
    /// whether compaction ([`crate::BlockStore::compact_partition`]) can
    /// reclaim capacity — without re-probing the partition.
    UpdateSlotsExhausted {
        /// The block whose update could not be placed.
        block: u64,
        /// The layout that ran out of space.
        layout: UpdateLayout,
        /// Length of the block's overflow chain (Interleaved), the number
        /// of this block's stacked updates (TwoStacks), or the number of
        /// shared-log entries (DedicatedLog) at the point of failure.
        chain_len: usize,
        /// Updates that could still be placed — 0 when the write that
        /// produced this error was rejected, but callers propagating a
        /// prediction (see [`crate::Partition::update_headroom`]) may
        /// carry a nonzero remainder.
        headroom: u64,
    },
    /// A patch description is malformed (e.g. offsets beyond block size).
    InvalidPatch(String),
    /// Wetlab retrieval ran but decoding failed (insufficient coverage,
    /// uncorrectable errors, or unverifiable checksum).
    DecodeFailed {
        /// The affected block.
        block: u64,
        /// What went wrong.
        reason: String,
    },
    /// The primer-pair library was exhausted (no compatible pair left).
    NoPrimerPairAvailable,
    /// A serving-layer worker (the batch leader executing on behalf of
    /// coalesced requests) panicked before publishing this request's
    /// result. The request can simply be retried — the panic was contained
    /// to the leader and the server remains serviceable.
    ServerPanicked,
    /// The partition id no longer fits the on-strand tag field (`u32`).
    /// Carries the id that overflowed.
    TooManyPartitions(usize),
    /// A durability operation failed: snapshot/journal I/O, a corrupt or
    /// version-mismatched image, or a journal replay that did not reproduce
    /// the recorded commit epoch. The store's in-memory state stays
    /// internally consistent, but its on-disk image can no longer be
    /// trusted to be in sync — callers should checkpoint or fail over.
    Persist(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownPartition(id) => write!(f, "unknown partition {id}"),
            StoreError::BlockOutOfRange { block, capacity } => {
                write!(f, "block {block} out of range (capacity {capacity})")
            }
            StoreError::BlockNotWritten(b) => write!(f, "block {b} has never been written"),
            StoreError::FileTooLarge { needed, available } => {
                write!(f, "file needs {needed} blocks, only {available} available")
            }
            StoreError::UpdateSlotsExhausted {
                block,
                layout,
                chain_len,
                headroom,
            } => {
                write!(
                    f,
                    "update slots exhausted for block {block} ({layout} layout, \
                     chain length {chain_len}, headroom {headroom}); \
                     compaction can reclaim capacity"
                )
            }
            StoreError::InvalidPatch(msg) => write!(f, "invalid patch: {msg}"),
            StoreError::DecodeFailed { block, reason } => {
                write!(f, "decoding block {block} failed: {reason}")
            }
            StoreError::NoPrimerPairAvailable => write!(f, "no compatible primer pair available"),
            StoreError::ServerPanicked => {
                write!(f, "the batch leader panicked before publishing this result")
            }
            StoreError::TooManyPartitions(id) => {
                write!(f, "partition id {id} does not fit the on-strand u32 tag")
            }
            StoreError::Persist(msg) => write!(f, "persistence failure: {msg}"),
        }
    }
}

impl Error for StoreError {}
