//! Block-store error types.

use std::error::Error;
use std::fmt;

/// Errors surfaced by the block store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The partition id does not exist.
    UnknownPartition(usize),
    /// The block id is outside the partition's address space.
    BlockOutOfRange {
        /// Requested block.
        block: u64,
        /// Blocks available.
        capacity: u64,
    },
    /// The block has never been written.
    BlockNotWritten(u64),
    /// A file is too large for the partition's remaining blocks.
    FileTooLarge {
        /// Blocks needed.
        needed: u64,
        /// Blocks available.
        available: u64,
    },
    /// All version slots (and overflow space) for this block are exhausted.
    UpdateSlotsExhausted(u64),
    /// A patch description is malformed (e.g. offsets beyond block size).
    InvalidPatch(String),
    /// Wetlab retrieval ran but decoding failed (insufficient coverage,
    /// uncorrectable errors, or unverifiable checksum).
    DecodeFailed {
        /// The affected block.
        block: u64,
        /// What went wrong.
        reason: String,
    },
    /// The primer-pair library was exhausted (no compatible pair left).
    NoPrimerPairAvailable,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownPartition(id) => write!(f, "unknown partition {id}"),
            StoreError::BlockOutOfRange { block, capacity } => {
                write!(f, "block {block} out of range (capacity {capacity})")
            }
            StoreError::BlockNotWritten(b) => write!(f, "block {b} has never been written"),
            StoreError::FileTooLarge { needed, available } => {
                write!(f, "file needs {needed} blocks, only {available} available")
            }
            StoreError::UpdateSlotsExhausted(b) => {
                write!(f, "update slots exhausted for block {b}")
            }
            StoreError::InvalidPatch(msg) => write!(f, "invalid patch: {msg}"),
            StoreError::DecodeFailed { block, reason } => {
                write!(f, "decoding block {block} failed: {reason}")
            }
            StoreError::NoPrimerPairAvailable => write!(f, "no compatible primer pair available"),
        }
    }
}

impl Error for StoreError {}
