//! The end-to-end block store over the simulated wetlab — sharded.
//!
//! # Shard model
//!
//! The paper's core premise (§4–§6) is that each partition is an
//! *independently addressable unit* with its own primer pair; physically,
//! per-address reactions are independent (Yazdi et al. 2015). The store
//! mirrors that: instead of one monolithic pool behind one lock, state is
//! split into
//!
//! - **shared immutable instruments** ([`Instruments`]: vendors, sequencer,
//!   nanodrop, coverage) — read freely by every operation; mutated only by
//!   `&mut self` setup methods, which the borrow checker makes exclusive;
//! - **per-partition shards** ([`PartitionShard`]): the partition's
//!   placement bookkeeping, its own tube ([`dna_sim::Pool`]; the store's
//!   tubes together form the [`dna_sim::TubeRack`] view returned by
//!   [`BlockStore::tube_rack`]), the digital front-end image of its
//!   blocks, a commit **epoch**, and a deterministic per-shard RNG — each
//!   behind its own mutex;
//! - the **shared DedicatedLog shard** — one partition/tube like any
//!   other, but explicitly cross-shard: every DedicatedLog read scopes the
//!   whole log (§5.3), and every DedicatedLog update appends to it.
//!
//! # Lock order
//!
//! Deadlock freedom comes from one global order. Locks are always taken
//! in this sequence (any prefix may be skipped, never reordered):
//!
//! 1. the **directory** `RwLock` (shard list + log registry);
//! 2. the **primer allocator** mutex;
//! 3. **data-shard** mutexes in ascending partition id;
//! 4. the **log shard** mutex (always last among shards, whatever its id).
//!
//! Most operations hold exactly one shard lock at a time. The exceptions:
//! a DedicatedLog update commit holds its target shard, then the log
//! shard; [`BlockStore::compact_log`] holds every DedicatedLog shard
//! (ascending), then the log shard.
//!
//! This order is *enforced*, not just documented: every store lock is a
//! [`crate::sync::RankedMutex`] / [`crate::sync::RankedRwLock`] (directory
//! = rank 0, primer alloc = 1, data shard = 2 + pid, log shard last), so a
//! violating acquisition panics in debug/test builds naming both sites,
//! and `cargo run -p xtask -- lint` statically checks the companion rules.
//! See README § "Lock discipline & static checks" for the rank table and
//! the lint catalog.
//!
//! # Snapshot → wetlab → validate-and-commit
//!
//! No lock is ever held across amplification, sequencing, synthesis
//! skew simulation, or decoding:
//!
//! 1. **snapshot** — briefly lock the shard(s); clone the `Arc`s for the
//!    partition metadata and the tube, record the epoch, split a
//!    deterministic RNG stream;
//! 2. **wetlab** — run PCR + sequencing + cluster/BMA/RS decode (reads),
//!    or vendor synthesis (updates, compaction rewrites) against the
//!    snapshot, lock-free — so the expensive phase for shard A runs
//!    concurrently with commits to shard B, and a panic inside the
//!    fallible wetlab/decode code can never poison a shard lock;
//! 3. **validate and commit** — re-lock, compare the epoch; if unchanged,
//!    apply the in-place mutations ([`dna_sim::Pool::mix_in`],
//!    `commit_placement`, epoch bump); if another writer won, retry from a
//!    fresh snapshot (every failed validation implies another commit
//!    landed, so the system as a whole always makes progress).
//!
//! Reads need no commit: their result is linearized at snapshot time, and
//! the snapshot epoch travels with the outcome
//! ([`BatchReadOutcome::shard_epochs`]) so a serving layer can order cache
//! fills against concurrent updates without holding store locks.

use crate::batch::{BatchPlan, BatchPlanner, BatchStats, PlanItem};
use crate::block::{unit_checksum_ok, Block, BLOCK_SIZE};
use crate::compaction::CompactionReport;
use crate::layout::UpdateLayout;
use crate::partition::{parse_pointer_block, Partition, PartitionConfig, VersionSlot};
use crate::persist::{
    write_image_atomic_with_crash, Journal, JournalRecord, PersistPaths, ShardImage, StoreImage,
};
use crate::sync::{LockRank, RankedMutex, RankedMutexGuard, RankedRwLock, RankedRwLockReadGuard};
use crate::update::UpdatePatch;
use crate::StoreError;
use dna_pipeline::{
    decode_block_validated, decode_jobs_parallel_into, demux_reads, thread_share,
    BlockDecodeOutcome, ChannelPrimer, DecodeJob,
};
use dna_primers::{PrimerConstraints, PrimerLibrary, PrimerPair};
use dna_seq::rng::DetRng;
use dna_seq::{Base, DnaSeq};
use dna_sim::{
    IdsChannel, Molecule, MultiplexPcrReaction, Nanodrop, PcrPrimer, PcrProtocol, PcrReaction,
    Pool, PrimerChannel, Read, Sequencer, SequencerScratch, SynthesisVendor, TubeRack,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Handle to a partition within a [`BlockStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PartitionId(pub usize);

/// Wetlab statistics of one block read.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadProtocolStats {
    /// PCR + sequencing round-trips (1 unless overflow pointers were
    /// followed).
    pub pcr_rounds: usize,
    /// Total reads sequenced.
    pub reads_sequenced: usize,
    /// Reads whose primer regions matched the target prefix.
    pub reads_matched: usize,
    /// Clusters reconstructed until coverage was complete (last round).
    pub clusters_used: usize,
}

/// Result of reading one block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockReadOutcome {
    /// The block content with all updates applied.
    pub block: Block,
    /// Number of update patches applied on top of the original.
    pub patches_applied: usize,
    /// Wetlab statistics.
    pub stats: ReadProtocolStats,
}

/// Receipt of one committed update: the post-update logical image and the
/// shard epoch the commit was assigned. Epochs are strictly monotonic per
/// shard, so a serving layer can order its cache / staleness-oracle writes
/// by them instead of holding a store-wide lock across the commit.
#[derive(Debug, Clone, PartialEq)]
pub struct CommittedUpdate {
    /// The block's logical content after the update.
    pub image: Block,
    /// The target shard's epoch after the commit.
    pub epoch: u64,
}

/// One channel of a multiplex round before budget assignment: the weighted
/// forward scope, the reverse primer, and the encoding units it covers.
struct ChannelSpec {
    scope: Vec<(DnaSeq, f64)>,
    reverse: DnaSeq,
    units: usize,
}

/// Result of a batched multi-block retrieval
/// ([`BlockStore::read_blocks_batch`]).
#[derive(Debug, Clone)]
pub struct BatchReadOutcome {
    /// Per-request outcomes, in request order. A failed block does not
    /// poison the rest of the batch.
    pub outcomes: Vec<Result<BlockReadOutcome, StoreError>>,
    /// Aggregate wetlab statistics across all multiplex rounds.
    pub stats: BatchStats,
    /// Each touched shard's epoch at snapshot time. A cache layer may
    /// install an outcome for `(pid, block)` only if no update with a
    /// higher epoch has been recorded for that key since — the
    /// validate-half of the snapshot protocol, exported to the caller.
    pub shard_epochs: BTreeMap<PartitionId, u64>,
}

/// The shared wetlab instruments and knobs: synthesis vendors, the
/// sequencer, the nanodrop, and the coverage setting. Immutable during
/// serving (`&self` operations only read them); the `&mut self` setters on
/// [`BlockStore`] are exclusive by construction.
#[derive(Debug, Clone)]
struct Instruments {
    twist: SynthesisVendor,
    idt: SynthesisVendor,
    sequencer: Sequencer,
    nanodrop: Nanodrop,
    /// Reads sampled per expected strand during retrieval.
    coverage: usize,
}

/// One shard of the store: a partition's bookkeeping, its own tube in the
/// rack, the digital front-end image of its blocks, and the state that
/// makes lock-free wetlab execution safe — a commit **epoch** (bumped by
/// every content mutation; snapshot validation compares it) and a
/// deterministic per-shard RNG (split per operation, so wetlab draws are
/// reproducible from the shard's operation order alone, independent of
/// cross-shard interleaving).
///
/// Shards are held behind per-shard mutexes in the store's directory; the
/// lock-order and snapshot protocol are documented at the
/// [module level](self).
#[derive(Debug)]
pub struct PartitionShard {
    /// Placement bookkeeping and encode/decode metadata. `Arc` so
    /// snapshots are O(1); mutators go through `Arc::make_mut`.
    partition: Arc<Partition>,
    /// This shard's tube. `Arc` so snapshots are O(1): writers mutate in
    /// place via `Arc::make_mut` + [`Pool::mix_in`] when no snapshot is
    /// outstanding, and copy-on-write only when one is.
    tube: Arc<Pool>,
    /// §5.4 digital front-end: the current logical content per block.
    logical: BTreeMap<u64, Block>,
    /// Commit epoch: strictly monotonic, bumped by every mutation that
    /// changes logical content or placement state.
    epoch: u64,
    /// Per-shard deterministic RNG; operations split private streams off
    /// it under the shard lock.
    rng: DetRng,
    /// Next free leaf in the shared update log (log shard only).
    log_head: u64,
    /// Monotonic sequence number for log entries (log shard only).
    log_seq: u32,
}

impl PartitionShard {
    fn new(partition: Partition, rng: DetRng) -> PartitionShard {
        PartitionShard {
            partition: Arc::new(partition),
            tube: Arc::new(Pool::new()),
            logical: BTreeMap::new(),
            epoch: 0,
            rng,
            log_head: 0,
            log_seq: 0,
        }
    }

    /// Splits a private RNG stream for one operation's wetlab draws.
    fn split_rng(&mut self) -> DetRng {
        DetRng::seed_from_u64(self.rng.next_u64())
    }

    /// A consistent point-in-time view of this shard (see
    /// [`ShardSnapshot`]), splitting an RNG stream for the operation.
    fn snapshot_state(&mut self, pid: usize) -> ShardSnapshot {
        ShardSnapshot {
            pid,
            partition: Arc::clone(&self.partition),
            tube: Arc::clone(&self.tube),
            epoch: self.epoch,
            rng: self.split_rng(),
        }
    }

    /// A read-only view of this shard in its shared-log role.
    fn log_state(&self, pid: usize) -> LogSnapshot {
        LogSnapshot {
            pid,
            partition: Arc::clone(&self.partition),
            tube: Arc::clone(&self.tube),
            head: self.log_head,
        }
    }
}

/// A consistent point-in-time view of one shard, taken under its lock and
/// used lock-free afterwards.
struct ShardSnapshot {
    pid: usize,
    partition: Arc<Partition>,
    tube: Arc<Pool>,
    epoch: u64,
    rng: DetRng,
}

/// A read-only view of the shared log shard (no RNG split: reads do not
/// disturb the log shard's stream).
struct LogSnapshot {
    pid: usize,
    partition: Arc<Partition>,
    tube: Arc<Pool>,
    head: u64,
}

/// The partition directory: the shard list plus the shared-log registry.
/// Write-locked only by partition creation; everything else takes brief
/// read locks to clone shard handles.
#[derive(Debug)]
struct Directory {
    // lock-rank: 2+pid
    shards: Vec<Arc<RankedMutex<PartitionShard>>>,
    /// The shared update-log shard (created on demand for
    /// [`UpdateLayout::DedicatedLog`]).
    log_pid: Option<usize>,
    /// Configuration template for the log partition (its tag is forced to
    /// [`LOG_PARTITION_TAG`] at creation).
    log_config: PartitionConfig,
    /// Store seed; shard RNGs derive from it by partition id.
    seed: u64,
}

/// Primer-pair allocation state.
#[derive(Debug)]
struct PrimerAlloc {
    library: PrimerLibrary,
    handed_out: usize,
}

/// The attached durability sink: the open write-ahead journal plus the
/// paths the next checkpoint writes. Absent on stores opened with
/// [`BlockStore::new`] — those are ephemeral, exactly as before the
/// persist subsystem existed.
#[derive(Debug)]
struct DurableSink {
    journal: Journal,
    paths: PersistPaths,
}

/// The full system: partitions, the per-partition archival tubes, and the
/// simulated instruments — sharded for concurrency as documented at the
/// [module level](self).
///
/// Every serving operation takes `&self`: the store is `Sync`, and callers
/// share it across threads directly (no external mutex). The digital
/// front-end cache of logical block contents (§5.4) lives inside each
/// shard; all read paths go through the wetlab.
#[derive(Debug)]
pub struct BlockStore {
    instruments: Instruments,
    // lock-rank: 0
    directory: RankedRwLock<Directory>,
    // lock-rank: 1
    alloc: RankedMutex<PrimerAlloc>,
    /// Write-ahead journal, appended inside commit critical sections.
    /// Its rank is last of all, so a commit may journal while holding any
    /// store lock; nothing is ever acquired under it.
    // lock-rank: journal
    journal: RankedMutex<Option<DurableSink>>,
}

/// Ground-truth tag distinguishing shared-log strands in the simulator.
const LOG_PARTITION_TAG: u32 = 1000;

impl BlockStore {
    /// Creates a store with a deterministic seed. The seed drives primer
    /// library generation, synthesis skew and read sampling — two stores
    /// with the same seed and per-shard call sequence behave identically.
    pub fn new(seed: u64) -> BlockStore {
        let constraints = PrimerConstraints::paper_default(20);
        let library =
            PrimerLibrary::generate_with_distance(&constraints, 8, 64, 400_000, seed ^ 0x9121);
        BlockStore {
            instruments: Instruments {
                twist: SynthesisVendor::twist(),
                idt: SynthesisVendor::idt(),
                sequencer: Sequencer::new(IdsChannel::illumina()),
                nanodrop: Nanodrop::benchtop(),
                coverage: 12,
            },
            directory: RankedRwLock::new(
                LockRank::DIRECTORY,
                "store-directory",
                Directory {
                    shards: Vec::new(),
                    log_pid: None,
                    log_config: PartitionConfig::paper_default(0x106),
                    seed,
                },
            ),
            alloc: RankedMutex::new(
                LockRank::PRIMER_ALLOC,
                "primer-alloc",
                PrimerAlloc {
                    library,
                    handed_out: 0,
                },
            ),
            journal: RankedMutex::new(LockRank::JOURNAL, "journal", None),
        }
    }

    // ----- locking primitives ----------------------------------------------
    //
    // Shard critical sections contain no panic sources (pure map/arithmetic
    // mutations; the fallible wetlab/decode phases run outside all locks by
    // construction), so a poisoned store lock indicates a store bug and we
    // fail fast. The serving layer's own locks recover from poisoning —
    // see `service`.

    fn dir_read(&self) -> RankedRwLockReadGuard<'_, Directory> {
        self.directory.read().expect("directory lock")
    }

    fn shard_cell(&self, pid: usize) -> Result<Arc<RankedMutex<PartitionShard>>, StoreError> {
        self.dir_read()
            .shards
            .get(pid)
            .cloned()
            .ok_or(StoreError::UnknownPartition(pid))
    }

    fn log_cell(&self) -> Option<(usize, Arc<RankedMutex<PartitionShard>>)> {
        let dir = self.dir_read();
        dir.log_pid.map(|pid| (pid, Arc::clone(&dir.shards[pid])))
    }

    fn lock_shard(cell: &Arc<RankedMutex<PartitionShard>>) -> RankedMutexGuard<'_, PartitionShard> {
        cell.lock().expect("shard lock")
    }

    /// Read-only snapshot of the shared log shard, if it exists.
    fn log_snapshot(&self) -> Option<LogSnapshot> {
        let (pid, cell) = self.log_cell()?;
        let shard = Self::lock_shard(&cell);
        Some(shard.log_state(pid))
    }

    /// Snapshot of one shard for a read, paired — *atomically* — with the
    /// shared-log snapshot when the shard's layout needs it. The log is
    /// snapshotted while the shard lock is still held (shard → log, the
    /// documented order): a DedicatedLog update holds its target shard
    /// across its entire log append + epoch bump, so holding the shard
    /// here means the pair is either entirely pre-update or entirely
    /// post-update — a torn pair could otherwise return post-update bytes
    /// stamped with the pre-update epoch and confuse the serving layer's
    /// epoch-ordered cache coherence.
    fn snapshot_for_read(
        &self,
        pid: usize,
    ) -> Result<(ShardSnapshot, Option<LogSnapshot>), StoreError> {
        let cell = self.shard_cell(pid)?;
        // Resolve the log cell before taking any shard lock (the
        // directory always comes first in the lock order). A log created
        // concurrently with this resolution holds only entries from
        // updates concurrent with this read — returning the pre-update
        // image is linearizable.
        let log = self.log_cell().filter(|&(log_pid, _)| log_pid != pid);
        let mut shard = Self::lock_shard(&cell);
        let snap = shard.snapshot_state(pid);
        let log_snap = if shard.partition.config().layout == UpdateLayout::DedicatedLog {
            log.map(|(log_pid, log_cell)| Self::lock_shard(&log_cell).log_state(log_pid))
        } else {
            None
        };
        Ok((snap, log_snap))
    }

    // ----- setup (&mut self: exclusive by construction) --------------------

    /// Replaces the configuration template for the shared DedicatedLog
    /// partition (e.g. a smaller address space for exhaustion tests).
    ///
    /// # Errors
    ///
    /// Rejected once the log partition exists — its geometry is baked into
    /// every synthesized entry.
    pub fn set_log_partition_config(&mut self, config: PartitionConfig) -> Result<(), StoreError> {
        let dir = self.directory.get_mut().expect("directory lock");
        if dir.log_pid.is_some() {
            return Err(StoreError::InvalidPatch(
                "log partition already created; configure before the first log update".to_string(),
            ));
        }
        dir.log_config = config;
        self.journal_append(JournalRecord::SetLogConfig { config })
    }

    /// Sets the sequencing coverage (reads per expected strand).
    pub fn set_coverage(&mut self, coverage: usize) {
        assert!(coverage > 0, "coverage must be positive");
        self.instruments.coverage = coverage;
    }

    /// Replaces the sequencer (e.g. to inject nanopore-grade noise).
    pub fn set_sequencer(&mut self, sequencer: Sequencer) {
        self.instruments.sequencer = sequencer;
    }

    // ----- inspection ------------------------------------------------------

    /// A snapshot of every shard's tube, keyed by partition tag — the
    /// monolithic [`TubeRack`] view of the sharded archive, for benches
    /// and inspection.
    pub fn tube_rack(&self) -> TubeRack {
        let cells: Vec<Arc<RankedMutex<PartitionShard>>> = self.dir_read().shards.to_vec();
        cells
            .iter()
            .map(|cell| {
                let shard = Self::lock_shard(cell);
                (
                    shard.partition.config().partition_tag,
                    (*shard.tube).clone(),
                )
            })
            .collect()
    }

    /// This partition's tube (a cheap `Arc` snapshot).
    ///
    /// # Errors
    ///
    /// Unknown ids are rejected.
    pub fn tube(&self, pid: PartitionId) -> Result<Arc<Pool>, StoreError> {
        let cell = self.shard_cell(pid.0)?;
        let shard = Self::lock_shard(&cell);
        Ok(Arc::clone(&shard.tube))
    }

    /// The digital front-end's view of a block's current logical content
    /// (§5.4: the original plus every applied update), or `None` if the
    /// block was never written through this store. No wetlab work is
    /// performed — this is the oracle a serving layer checks cached reads
    /// against.
    pub fn logical_block(&self, pid: PartitionId, block: u64) -> Option<Block> {
        self.logical_versioned(pid, block).map(|(image, _)| image)
    }

    /// As [`BlockStore::logical_block`], additionally returning the
    /// shard's current epoch — read atomically under the shard lock, so a
    /// serving layer can order the pair against concurrent commits.
    pub fn logical_versioned(&self, pid: PartitionId, block: u64) -> Option<(Block, u64)> {
        let cell = self.shard_cell(pid.0).ok()?;
        let shard = Self::lock_shard(&cell);
        shard
            .logical
            .get(&block)
            .cloned()
            .map(|image| (image, shard.epoch))
    }

    /// The digital front-end's logical contents in `(partition, block)`
    /// order — the snapshot a serving layer seeds its staleness oracle
    /// from when wrapping an already-loaded store.
    pub fn logical_contents(&self) -> Vec<((PartitionId, u64), Block)> {
        let cells: Vec<Arc<RankedMutex<PartitionShard>>> = self.dir_read().shards.to_vec();
        let mut out = Vec::new();
        for (pid, cell) in cells.iter().enumerate() {
            let shard = Self::lock_shard(cell);
            for (&block, image) in &shard.logical {
                out.push(((PartitionId(pid), block), image.clone()));
            }
        }
        out
    }

    /// This shard's current commit epoch.
    ///
    /// # Errors
    ///
    /// Unknown ids are rejected.
    pub fn shard_epoch(&self, pid: PartitionId) -> Result<u64, StoreError> {
        let cell = self.shard_cell(pid.0)?;
        let epoch = Self::lock_shard(&cell).epoch;
        Ok(epoch)
    }

    /// A snapshot of a partition's metadata (config, primers, placement
    /// bookkeeping). Cheap: the metadata is `Arc`-shared with the shard
    /// and copied only when a writer commits concurrently.
    ///
    /// # Errors
    ///
    /// Unknown ids are rejected.
    pub fn partition(&self, pid: PartitionId) -> Result<Arc<Partition>, StoreError> {
        let cell = self.shard_cell(pid.0)?;
        let shard = Self::lock_shard(&cell);
        Ok(Arc::clone(&shard.partition))
    }

    // ----- partition creation ----------------------------------------------

    /// Creates a partition, assigning the next compatible primer pair.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoPrimerPairAvailable`] when the primer library is
    /// exhausted (§1: only ~1000–3000 compatible primers exist at length
    /// 20 — the scarcity that motivates this whole design).
    pub fn create_partition(&self, config: PartitionConfig) -> Result<PartitionId, StoreError> {
        let mut dir = self.directory.write().expect("directory lock");
        let pair = self.next_primer_pair()?;
        let mut config = config;
        let pid = dir.shards.len();
        config.partition_tag =
            u32::try_from(pid).map_err(|_| StoreError::TooManyPartitions(pid))?;
        let rng = DetRng::seed_from_u64(dir.seed ^ 0xA11C).derive(pid as u64);
        dir.shards.push(Arc::new(RankedMutex::new(
            LockRank::shard(pid),
            "data-shard",
            PartitionShard::new(Partition::new(config, pair), rng),
        )));
        self.journal_append(JournalRecord::CreatePartition {
            pid: pid as u64,
            config,
        })?;
        Ok(PartitionId(pid))
    }

    /// The shared log shard's id, creating it (with the configured
    /// template) on first use.
    fn ensure_log_partition(&self) -> Result<usize, StoreError> {
        if let Some(pid) = self.dir_read().log_pid {
            return Ok(pid);
        }
        let mut dir = self.directory.write().expect("directory lock");
        if let Some(pid) = dir.log_pid {
            return Ok(pid); // raced another creator
        }
        let pair = self.next_primer_pair()?;
        let mut cfg = dir.log_config;
        cfg.partition_tag = LOG_PARTITION_TAG; // distinguish log strands in tags
        dir.log_config = cfg; // canonical: the template matches the journaled creation
        let pid = dir.shards.len();
        let rng = DetRng::seed_from_u64(dir.seed ^ 0xA11C).derive(pid as u64);
        dir.shards.push(Arc::new(RankedMutex::new(
            LockRank::LOG_SHARD,
            "log-shard",
            PartitionShard::new(Partition::new(cfg, pair), rng),
        )));
        dir.log_pid = Some(pid);
        self.journal_append(JournalRecord::CreateLogPartition {
            pid: pid as u64,
            config: cfg,
        })?;
        Ok(pid)
    }

    fn next_primer_pair(&self) -> Result<PrimerPair, StoreError> {
        let mut alloc = self.alloc.lock().expect("primer alloc lock");
        if alloc.handed_out + 2 > alloc.library.len() {
            return Err(StoreError::NoPrimerPairAvailable);
        }
        let fwd = alloc.library.primer(alloc.handed_out).clone();
        let rev = alloc.library.primer(alloc.handed_out + 1).clone();
        alloc.handed_out += 2;
        Ok(PrimerPair::new(fwd, rev))
    }

    // ----- durability ------------------------------------------------------

    /// Appends `record` to the write-ahead journal, if one is attached.
    ///
    /// Called inside commit critical sections, after the epoch bump and
    /// before the caller observes success — the journal rank is last, so
    /// appending under any held store lock respects the global order. A
    /// failed append surfaces as [`StoreError::Persist`]: the in-memory
    /// commit has already happened (the store stays internally consistent)
    /// but its durability is unknown, the standard ambiguous-outcome
    /// contract of a write-ahead log.
    fn journal_append(&self, record: JournalRecord) -> Result<(), StoreError> {
        let mut sink = self.journal.lock().expect("journal lock");
        match sink.as_mut() {
            Some(sink) => sink.journal.append(&record),
            None => Ok(()),
        }
    }

    /// Attaches the durability sink: every subsequent commit journals
    /// through `journal`, and [`BlockStore::checkpoint`] writes to
    /// `paths`. Called by the recovery path once replay is complete.
    pub(crate) fn attach_durability(&self, journal: Journal, paths: PersistPaths) {
        let mut sink = self.journal.lock().expect("journal lock");
        *sink = Some(DurableSink { journal, paths });
    }

    /// Bytes currently in the attached journal (header included), or
    /// `None` when the store is ephemeral. Crash-injection tests use this
    /// to aim their abort offsets.
    pub fn journal_bytes(&self) -> Option<u64> {
        let sink = self.journal.lock().expect("journal lock");
        sink.as_ref().map(|s| s.journal.bytes_written())
    }

    /// Arms the attached journal's crash-injection knob (see
    /// [`Journal::set_crash_after_bytes`]): the process aborts mid-append
    /// once the journal file would grow past `limit` absolute bytes.
    /// Testing only; no-op on an ephemeral store.
    pub fn set_journal_crash_after_bytes(&self, limit: Option<u64>) {
        let mut sink = self.journal.lock().expect("journal lock");
        if let Some(sink) = sink.as_mut() {
            sink.journal.set_crash_after_bytes(limit);
        }
    }

    /// Captures a consistent full-store image. Takes every lock in the
    /// documented global order — directory, primer allocator, data shards
    /// ascending, log shard last — and holds them for the duration, so the
    /// image is a true point-in-time snapshot.
    pub fn capture_image(&self) -> StoreImage {
        let dir = self.dir_read();
        let alloc = self.alloc.lock().expect("primer alloc lock");
        let guards = Self::lock_all_shards(&dir);
        Self::image_of(
            &dir,
            alloc.handed_out,
            self.instruments.coverage as u64,
            &guards,
        )
    }

    /// Locks every shard in the global order (data shards ascending pid,
    /// log shard last), returning the guards indexed by pid.
    fn lock_all_shards<'a>(dir: &'a Directory) -> Vec<RankedMutexGuard<'a, PartitionShard>> {
        let mut slots: Vec<Option<RankedMutexGuard<'a, PartitionShard>>> =
            (0..dir.shards.len()).map(|_| None).collect();
        for (pid, cell) in dir.shards.iter().enumerate() {
            if Some(pid) == dir.log_pid {
                continue;
            }
            slots[pid] = Some(cell.lock().expect("shard lock"));
        }
        if let Some(log_pid) = dir.log_pid {
            slots[log_pid] = Some(dir.shards[log_pid].lock().expect("shard lock"));
        }
        slots
            .into_iter()
            .map(|g| g.expect("every shard locked"))
            .collect()
    }

    fn image_of(
        dir: &Directory,
        handed_out: usize,
        coverage: u64,
        guards: &[RankedMutexGuard<'_, PartitionShard>],
    ) -> StoreImage {
        let shards = guards
            .iter()
            .map(|shard| ShardImage {
                config: *shard.partition.config(),
                forward: shard.partition.primers().forward().clone(),
                reverse: shard.partition.primers().reverse().clone(),
                bookkeeping: shard.partition.bookkeeping(),
                species: shard
                    .tube
                    .iter()
                    .map(|(seq, sp)| (seq.clone(), sp.abundance, sp.tag))
                    .collect(),
                logical: shard
                    .logical
                    .iter()
                    .map(|(&b, img)| (b, img.data.clone()))
                    .collect(),
                epoch: shard.epoch,
                rng_state: shard.rng.state(),
                log_head: shard.log_head,
                log_seq: shard.log_seq,
            })
            .collect();
        StoreImage {
            seed: dir.seed,
            coverage,
            handed_out: handed_out as u64,
            log_pid: dir.log_pid.map(|p| p as u64),
            log_config: dir.log_config,
            shards,
        }
    }

    /// Checkpoints the store: atomically writes a fresh image and resets
    /// the journal to just its header, all while holding every store lock —
    /// no commit can land between the image capture and the journal reset,
    /// so image + journal always describe one consistent history.
    ///
    /// # Errors
    ///
    /// [`StoreError::Persist`] if no durability sink is attached (open the
    /// store through recovery first) or on any I/O failure.
    pub fn checkpoint(&self) -> Result<(), StoreError> {
        self.checkpoint_with_crash(None)
    }

    /// As [`BlockStore::checkpoint`], aborting the process after
    /// `crash_after_bytes` of the new image have reached the temporary
    /// file (see [`write_image_atomic_with_crash`]). Testing only.
    pub fn checkpoint_with_crash(&self, crash_after_bytes: Option<u64>) -> Result<(), StoreError> {
        let dir = self.dir_read();
        let alloc = self.alloc.lock().expect("primer alloc lock");
        let guards = Self::lock_all_shards(&dir);
        let mut sink = self.journal.lock().expect("journal lock");
        let Some(sink) = sink.as_mut() else {
            return Err(StoreError::Persist(
                "no durability sink attached; open the store through open_or_recover".to_string(),
            ));
        };
        let image = Self::image_of(
            &dir,
            alloc.handed_out,
            self.instruments.coverage as u64,
            &guards,
        );
        write_image_atomic_with_crash(&sink.paths.image(), &image, crash_after_bytes)?;
        sink.journal.truncate_to_header()
    }

    /// Rebuilds a store from a decoded image: regenerates the primer
    /// library from the persisted seed (§4.4 — the index trees, payload
    /// codecs and primer library all re-derive from seeds; only live state
    /// is stored) and restores every shard verbatim.
    ///
    /// # Errors
    ///
    /// [`StoreError::Persist`] when the image is internally inconsistent
    /// (out-of-range log pid, oversized blocks, primer over-allocation) —
    /// possible only for a hand-built image, since the checksum already
    /// vetted the bytes.
    pub fn from_image(image: &StoreImage) -> Result<BlockStore, StoreError> {
        let mut store = BlockStore::new(image.seed);
        if image.coverage == 0 {
            return Err(StoreError::Persist(
                "image records zero sequencing coverage".to_string(),
            ));
        }
        store.instruments.coverage = image.coverage as usize;
        let log_pid = match image.log_pid {
            Some(p) if p as usize >= image.shards.len() => {
                return Err(StoreError::Persist(format!(
                    "image log pid {p} out of range ({} shards)",
                    image.shards.len()
                )));
            }
            other => other.map(|p| p as usize),
        };
        {
            let mut dir = store.directory.write().expect("directory lock");
            dir.log_pid = log_pid;
            dir.log_config = image.log_config;
            for (pid, s) in image.shards.iter().enumerate() {
                let partition = Partition::restore(
                    s.config,
                    PrimerPair::new(s.forward.clone(), s.reverse.clone()),
                    s.bookkeeping.clone(),
                );
                let mut tube = Pool::new();
                for (seq, abundance, tag) in &s.species {
                    tube.add(seq.clone(), *abundance, *tag);
                }
                let mut logical = BTreeMap::new();
                for (block, data) in &s.logical {
                    if data.len() != BLOCK_SIZE {
                        return Err(StoreError::Persist(format!(
                            "image block {block} has {} bytes, expected {BLOCK_SIZE}",
                            data.len()
                        )));
                    }
                    logical.insert(*block, Block::from_bytes(data)?);
                }
                let (rank, name) = if Some(pid) == log_pid {
                    (LockRank::LOG_SHARD, "log-shard")
                } else {
                    (LockRank::shard(pid), "data-shard")
                };
                dir.shards.push(Arc::new(RankedMutex::new(
                    rank,
                    name,
                    PartitionShard {
                        partition: Arc::new(partition),
                        tube: Arc::new(tube),
                        logical,
                        epoch: s.epoch,
                        rng: DetRng::from_state(s.rng_state),
                        log_head: s.log_head,
                        log_seq: s.log_seq,
                    },
                )));
            }
        }
        {
            let mut alloc = store.alloc.lock().expect("primer alloc lock");
            let handed_out = image.handed_out as usize;
            if handed_out > alloc.library.len() {
                return Err(StoreError::Persist(format!(
                    "image hands out {handed_out} primers but the library holds {}",
                    alloc.library.len()
                )));
            }
            alloc.handed_out = handed_out;
        }
        Ok(store)
    }

    /// Replays one journal record during recovery (the journal is not yet
    /// attached, so replayed commits do not re-journal themselves).
    ///
    /// Records already covered by the image — epoch at or below the
    /// shard's current epoch, partitions that already exist — are skipped,
    /// making replay idempotent. Every applied record must land exactly on
    /// its recorded epoch; a mismatch means the journal does not describe
    /// this store and recovery fails detectably.
    ///
    /// # Errors
    ///
    /// [`StoreError::Persist`] on any divergence between the record and
    /// the store; the record's own replayed operation may also fail.
    pub(crate) fn replay_record(&self, record: &JournalRecord) -> Result<(), StoreError> {
        match record {
            JournalRecord::CreatePartition { pid, config } => {
                let existing = self.dir_read().shards.len() as u64;
                if *pid < existing {
                    return Ok(()); // already in the image
                }
                if *pid > existing {
                    return Err(StoreError::Persist(format!(
                        "journal creates partition {pid} but only {existing} exist"
                    )));
                }
                let got = self.create_partition(*config)?;
                if got.0 as u64 != *pid {
                    return Err(StoreError::Persist(format!(
                        "replayed partition creation produced pid {} instead of {pid}",
                        got.0
                    )));
                }
                Ok(())
            }
            JournalRecord::CreateLogPartition { pid, config } => {
                if let Some(existing) = self.dir_read().log_pid {
                    if existing as u64 != *pid {
                        return Err(StoreError::Persist(format!(
                            "journal places the log at pid {pid} but the image has it at {existing}"
                        )));
                    }
                    return Ok(()); // already in the image
                }
                {
                    let mut dir = self.directory.write().expect("directory lock");
                    dir.log_config = *config;
                }
                let got = self.ensure_log_partition()?;
                if got as u64 != *pid {
                    return Err(StoreError::Persist(format!(
                        "replayed log creation produced pid {got} instead of {pid}"
                    )));
                }
                Ok(())
            }
            JournalRecord::WriteFile {
                pid,
                first_block,
                data,
                epoch,
            } => {
                let pid = PartitionId(*pid as usize);
                if *epoch <= self.shard_epoch(pid)? {
                    return Ok(()); // already in the image
                }
                self.write_file_at(pid, *first_block, data)?;
                self.check_replay_epoch(pid, *epoch)
            }
            JournalRecord::Update {
                pid,
                block,
                content,
                epoch,
            } => {
                let pid = PartitionId(*pid as usize);
                if *epoch <= self.shard_epoch(pid)? {
                    return Ok(());
                }
                self.update_block(pid, *block, content)?;
                self.check_replay_epoch(pid, *epoch)
            }
            JournalRecord::Compact { pid, epoch } => {
                let pid = PartitionId(*pid as usize);
                if *epoch <= self.shard_epoch(pid)? {
                    return Ok(());
                }
                self.compact_partition(pid)?;
                self.check_replay_epoch(pid, *epoch)
            }
            JournalRecord::CompactLog { epoch } => {
                let log_pid = self.log_partition_id().ok_or_else(|| {
                    StoreError::Persist(
                        "journal compacts the log but no log partition exists".to_string(),
                    )
                })?;
                if *epoch <= self.shard_epoch(log_pid)? {
                    return Ok(());
                }
                self.compact_log()?;
                self.check_replay_epoch(log_pid, *epoch)
            }
            JournalRecord::SetLogConfig { config } => {
                if self.dir_read().log_pid.is_some() {
                    return Ok(()); // image already holds the created log
                }
                let mut dir = self.directory.write().expect("directory lock");
                dir.log_config = *config;
                Ok(())
            }
        }
    }

    fn check_replay_epoch(&self, pid: PartitionId, expected: u64) -> Result<(), StoreError> {
        let got = self.shard_epoch(pid)?;
        if got == expected {
            Ok(())
        } else {
            Err(StoreError::Persist(format!(
                "replay left partition {} at epoch {got}, journal recorded {expected}",
                pid.0
            )))
        }
    }

    // ----- writes ----------------------------------------------------------

    /// Writes `data` as consecutive blocks starting at block 0, synthesizes
    /// the strands (Twist vendor model) and adds them to the partition's
    /// tube. Returns the number of blocks written.
    ///
    /// # Errors
    ///
    /// Propagates partition errors (range, double write).
    pub fn write_file(&self, pid: PartitionId, data: &[u8]) -> Result<u64, StoreError> {
        self.write_file_at(pid, 0, data)
    }

    /// Writes `data` as consecutive blocks starting at `first_block`.
    ///
    /// Held under the shard lock end to end: bulk loading is a setup-time
    /// operation, and only this shard is blocked.
    ///
    /// # Errors
    ///
    /// Propagates partition errors (range, double write).
    pub fn write_file_at(
        &self,
        pid: PartitionId,
        first_block: u64,
        data: &[u8],
    ) -> Result<u64, StoreError> {
        let cell = self.shard_cell(pid.0)?;
        let mut shard = Self::lock_shard(&cell);
        let blocks = data.chunks(BLOCK_SIZE).collect::<Vec<_>>();
        let mut designs = Vec::new();
        let partition = Arc::make_mut(&mut shard.partition);
        let mut images = Vec::new();
        for (i, chunk) in blocks.iter().enumerate() {
            let block_id = first_block + i as u64;
            let block = Block::from_bytes(chunk)?;
            designs.extend(partition.encode_block(block_id, &block)?);
            images.push((block_id, block));
        }
        for (block_id, block) in images {
            shard.logical.insert(block_id, block);
        }
        let mut rng = shard.split_rng();
        // lint: allow(wetlab-under-lock): bulk load is a documented setup-time exception — it holds only this shard end to end
        let synthesized = self.instruments.twist.synthesize(&designs, &mut rng);
        // lint: allow(wetlab-under-lock): commit-phase merge of already-synthesized molecules; no wetlab simulation runs here
        Arc::make_mut(&mut shard.tube).mix_in(&synthesized, 1.0, 1.0);
        shard.epoch += 1;
        self.journal_append(JournalRecord::WriteFile {
            pid: pid.0 as u64,
            first_block,
            data: data.to_vec(),
            epoch: shard.epoch,
        })?;
        Ok(blocks.len() as u64)
    }

    /// Updates a block to `new_content`: computes a §6.4 diff patch against
    /// the logical cache, synthesizes it (IDT vendor model, 50000× more
    /// concentrated), and mixes it into the target tube at matched
    /// per-oligo concentration (§6.4.2).
    ///
    /// Runs the snapshot → synthesize → validate-and-commit protocol: the
    /// synthesis happens with no locks held, and the commit retries from a
    /// fresh snapshot if a concurrent writer won the shard meanwhile.
    ///
    /// # Errors
    ///
    /// Fails when the block was never written, the change cannot fit one
    /// patch, or the address space is exhausted.
    pub fn update_block(
        &self,
        pid: PartitionId,
        block: u64,
        new_content: &[u8],
    ) -> Result<(), StoreError> {
        self.update_block_committed(pid, block, new_content)
            .map(|_| ())
    }

    /// As [`BlockStore::update_block`], returning the commit receipt
    /// (post-update image + shard epoch) a serving layer orders its cache
    /// coherence by.
    ///
    /// # Errors
    ///
    /// See [`BlockStore::update_block`].
    pub fn update_block_committed(
        &self,
        pid: PartitionId,
        block: u64,
        new_content: &[u8],
    ) -> Result<CommittedUpdate, StoreError> {
        let new = Block::from_bytes(new_content)?;
        loop {
            // Snapshot: shard state + the target block's current image.
            let cell = self.shard_cell(pid.0)?;
            let (snap, old) = {
                let mut shard = Self::lock_shard(&cell);
                let old = shard.logical.get(&block).cloned();
                (
                    ShardSnapshot {
                        pid: pid.0,
                        partition: Arc::clone(&shard.partition),
                        tube: Arc::clone(&shard.tube),
                        epoch: shard.epoch,
                        rng: shard.split_rng(),
                    },
                    old,
                )
            };
            let old = old.ok_or(StoreError::BlockNotWritten(block))?;
            let patch = UpdatePatch::diff(&old, &new).ok_or_else(|| {
                StoreError::InvalidPatch("change too large for one patch".to_string())
            })?;
            if snap.partition.config().layout == UpdateLayout::DedicatedLog {
                match self.try_log_update(&cell, &snap, block, &new, &patch)? {
                    Some(receipt) => return Ok(receipt),
                    None => continue, // lost a race; retry from a fresh snapshot
                }
            }
            // Plan + encode + synthesize against the snapshot, lock-free.
            let mut rng = snap.rng;
            let placement = snap.partition.plan_update(block)?;
            let designs = snap.partition.encode_placement(&placement, &patch);
            let (rewrites, cost) = self.instruments.synthesize_rewrites(&designs, &mut rng);
            debug_assert!(cost >= 0.0);
            // Validate and commit.
            let mut shard = Self::lock_shard(&cell);
            if shard.epoch != snap.epoch {
                continue; // another writer committed; re-plan
            }
            Arc::make_mut(&mut shard.partition).commit_placement(block, &placement);
            // §6.4.2: the patch lands at the data tube's own per-oligo
            // concentration.
            let dilution = self
                .instruments
                .rewrite_dilution(&shard.tube, &rewrites, &mut rng);
            // lint: allow(wetlab-under-lock): commit-phase merge of pre-synthesized rewrites; synthesis ran lock-free above
            Arc::make_mut(&mut shard.tube).mix_in(&rewrites, 1.0, dilution);
            shard.logical.insert(block, new.clone());
            shard.epoch += 1;
            self.journal_append(JournalRecord::Update {
                pid: pid.0 as u64,
                block,
                content: new.data.clone(),
                epoch: shard.epoch,
            })?;
            return Ok(CommittedUpdate {
                image: new,
                epoch: shard.epoch,
            });
        }
    }

    /// One attempt at a DedicatedLog-layout update: append a log entry for
    /// `(pid, block)`. Returns `Ok(None)` when a concurrent commit
    /// invalidated the snapshot (caller retries).
    fn try_log_update(
        &self,
        target_cell: &Arc<RankedMutex<PartitionShard>>,
        target: &ShardSnapshot,
        block: u64,
        new: &Block,
        patch: &UpdatePatch,
    ) -> Result<Option<CommittedUpdate>, StoreError> {
        let log_pid = self.ensure_log_partition()?;
        let log_cell = self.shard_cell(log_pid)?;
        // Snapshot the log shard: head/seq reservation candidates, the
        // entry geometry, and a synthesis RNG stream.
        let (log_partition, log_epoch, head, seq, mut rng) = {
            let mut log = Self::lock_shard(&log_cell);
            (
                Arc::clone(&log.partition),
                log.epoch,
                log.log_head,
                log.log_seq,
                log.split_rng(),
            )
        };
        let capacity = log_partition.num_leaves() - 1;
        if head >= capacity {
            return Err(StoreError::UpdateSlotsExhausted {
                block,
                layout: UpdateLayout::DedicatedLog,
                chain_len: head as usize,
                headroom: 0,
            });
        }
        // Encode + synthesize the entry with no locks held.
        let target_tag =
            u32::try_from(target.pid).expect("pid fits u32: enforced at partition creation");
        let entry = log_entry_block(target_tag, block, seq, patch);
        let designs = log_partition.encode_unit(head, VersionSlot(0), &entry);
        let (rewrites, cost) = self.instruments.synthesize_rewrites(&designs, &mut rng);
        debug_assert!(cost >= 0.0);
        // Validate and commit, target shard first, log shard last (the
        // global lock order: data shards before the log shard).
        let mut shard = Self::lock_shard(target_cell);
        if shard.epoch != target.epoch {
            return Ok(None);
        }
        let mut log = Self::lock_shard(&log_cell);
        if log.epoch != log_epoch {
            return Ok(None);
        }
        // Epoch validated ⇒ head/seq unchanged ⇒ the reserved leaf is
        // still free. Record first (the only fallible step), then mutate.
        Arc::make_mut(&mut log.partition).record_block_write(head)?;
        // §6.4.2 with a sharded rack: the log tube starts *empty*, so the
        // dilution reference is the updated block's own data tube — the
        // log must operate at the archive's per-oligo concentration, or
        // its entries would swamp every multiplexed round they ride in.
        let dilution = self
            .instruments
            .rewrite_dilution(&shard.tube, &rewrites, &mut rng);
        // lint: allow(wetlab-under-lock): commit-phase merge of pre-synthesized log entry; synthesis ran lock-free above
        Arc::make_mut(&mut log.tube).mix_in(&rewrites, 1.0, dilution);
        log.log_head += 1;
        log.log_seq += 1;
        log.epoch += 1;
        drop(log);
        Arc::make_mut(&mut shard.partition).note_external_update(block);
        shard.logical.insert(block, new.clone());
        shard.epoch += 1;
        self.journal_append(JournalRecord::Update {
            pid: target.pid as u64,
            block,
            content: new.data.clone(),
            epoch: shard.epoch,
        })?;
        Ok(Some(CommittedUpdate {
            image: new.clone(),
            epoch: shard.epoch,
        }))
    }

    // ----- maintenance / compaction ----------------------------------------

    /// Every partition handle, the shared log partition included (it
    /// reports [`UpdateLayout`]-independent zero update state, so policy
    /// scans skip it naturally).
    pub fn partition_ids(&self) -> Vec<PartitionId> {
        (0..self.dir_read().shards.len()).map(PartitionId).collect()
    }

    /// The shared DedicatedLog partition, if any log update was committed.
    pub fn log_partition_id(&self) -> Option<PartitionId> {
        self.dir_read().log_pid.map(PartitionId)
    }

    /// Entries currently in the shared update log.
    pub fn log_entries(&self) -> u64 {
        self.log_snapshot().map_or(0, |log| log.head)
    }

    /// Entries the shared log can still accept before
    /// [`StoreError::UpdateSlotsExhausted`].
    pub fn log_headroom(&self) -> u64 {
        match self.log_snapshot() {
            Some(log) => (log.partition.num_leaves() - 1).saturating_sub(log.head),
            None => {
                let dir = self.dir_read();
                (1u64 << (2 * dir.log_config.tree_depth)) - 1
            }
        }
    }

    /// Predicts how many more updates of `block` can be committed before
    /// [`StoreError::UpdateSlotsExhausted`] — [`Partition::update_headroom`]
    /// for in-partition layouts, remaining shared-log capacity for
    /// [`UpdateLayout::DedicatedLog`]. Callers (notably the serving layer's
    /// maintenance path) compact when this runs low instead of probing with
    /// writes.
    ///
    /// # Errors
    ///
    /// Unknown partitions are rejected.
    pub fn update_headroom(&self, pid: PartitionId, block: u64) -> Result<u64, StoreError> {
        let partition = self.partition(pid)?;
        match partition.config().layout {
            UpdateLayout::DedicatedLog => {
                if partition.writes_of(block) == 0 {
                    return Ok(0);
                }
                Ok(self.log_headroom())
            }
            _ => Ok(partition.update_headroom(block)),
        }
    }

    /// Projects the §5.3 analytical retrieval scope of one block from the
    /// store's current update metadata: how many encoding units a read of
    /// `block` must amplify and sequence right now. Compaction policies
    /// threshold on this; compaction itself collapses it back to 1.
    ///
    /// # Errors
    ///
    /// Unknown partitions are rejected.
    pub fn retrieval_scope_units(&self, pid: PartitionId, block: u64) -> Result<u64, StoreError> {
        let partition = self.partition(pid)?;
        let layout = partition.config().layout;
        let block_updates = u64::from(partition.writes_of(block).saturating_sub(1));
        let partition_updates = match layout {
            UpdateLayout::TwoStacks => partition.stack_update_count(),
            _ => partition.total_updates(),
        };
        Ok(layout.retrieval_scope_units(block_updates, partition_updates, self.log_entries()))
    }

    /// Compacts one partition: folds every updated block's patch chain into
    /// its current logical image (the §5.4 digital front-end maintains it —
    /// no wetlab read is needed), retires the stale version / overflow /
    /// pointer molecules from the shard's tube, re-synthesizes a fresh base
    /// unit at [`VersionSlot`] 0 per rebased block (IDT vendor, §6.4.2
    /// concentration-matched mixing), and resets the partition's placement
    /// bookkeeping through [`Partition::reclaim_updates`]. Afterwards the
    /// partition has full update headroom again and every rebased block
    /// reads back in a single-unit scope.
    ///
    /// Follows the snapshot → synthesize → validate-and-commit protocol:
    /// re-encoding and synthesis run with no locks held (so serving other
    /// shards is never blocked), and the commit retries if an update
    /// committed to this shard meanwhile. Since every fresh base unit is
    /// synthesized *before* anything is retired, a failure at any point
    /// leaves partition and tube untouched.
    ///
    /// A [`UpdateLayout::DedicatedLog`] partition keeps its patches in the
    /// shared log, whose entries cannot be retired per partition — so
    /// compacting one delegates to [`BlockStore::compact_log`], folding the
    /// whole log.
    ///
    /// # Errors
    ///
    /// Unknown partitions are rejected; a rebased block missing its logical
    /// image (impossible through the store's own write paths) surfaces as
    /// [`StoreError::BlockNotWritten`].
    pub fn compact_partition(&self, pid: PartitionId) -> Result<CompactionReport, StoreError> {
        let cell = self.shard_cell(pid.0)?;
        loop {
            // Snapshot: metadata + the images of every updated block.
            let (snap, images) = {
                let mut shard = Self::lock_shard(&cell);
                let images: BTreeMap<u64, Block> = shard
                    .partition
                    .updated_blocks()
                    .iter()
                    .filter_map(|&(b, _)| shard.logical.get(&b).map(|img| (b, img.clone())))
                    .collect();
                (
                    ShardSnapshot {
                        pid: pid.0,
                        partition: Arc::clone(&shard.partition),
                        tube: Arc::clone(&shard.tube),
                        epoch: shard.epoch,
                        rng: shard.split_rng(),
                    },
                    images,
                )
            };
            let layout = snap.partition.config().layout;
            if layout == UpdateLayout::DedicatedLog {
                return self.compact_log();
            }
            let updated = snap.partition.updated_blocks();
            if updated.is_empty() {
                return Ok(CompactionReport::default());
            }
            // Stale units, counted from metadata before the reclaim: every
            // patch, every chain pointer, and the superseded base unit of
            // each rebased block. Re-encode every fresh base unit FIRST —
            // the only fallible step — so an error leaves partition and
            // tube untouched.
            let mut units_reclaimed = 0u64;
            let mut designs = Vec::new();
            let mut rebased = Vec::new();
            for &(block, writes) in &updated {
                let pointers = match layout {
                    UpdateLayout::Interleaved { .. } => snap.partition.chain_of(block).len() as u64,
                    _ => 0,
                };
                units_reclaimed += u64::from(writes - 1) + pointers + 1;
                let image = images
                    .get(&block)
                    .ok_or(StoreError::BlockNotWritten(block))?;
                designs.extend(snap.partition.encode_unit(block, VersionSlot(0), image));
                rebased.push((pid, block));
            }
            let mut rng = snap.rng;
            let (rewrites, synthesis_cost) =
                self.instruments.synthesize_rewrites(&designs, &mut rng);
            // Validate and commit.
            let mut shard = Self::lock_shard(&cell);
            if shard.epoch != snap.epoch {
                continue; // an update landed; fold it in on the next pass
            }
            let reclaimed = Arc::make_mut(&mut shard.partition).reclaim_updates();
            let stale: BTreeSet<u64> = reclaimed
                .rebased_blocks
                .iter()
                .map(|&(b, _)| b)
                .chain(reclaimed.freed_leaves.iter().copied())
                .collect();
            let tag = shard.partition.config().partition_tag;
            // Dilution reference is the tube *before* retirement: the
            // rewrites must land at the archive's concentration even when
            // every live species of this shard is about to be retired.
            let dilution = self
                .instruments
                .rewrite_dilution(&shard.tube, &rewrites, &mut rng);
            let tube = Arc::make_mut(&mut shard.tube);
            let species_retired =
                tube.retire_where(|t| t.partition == tag && stale.contains(&t.unit));
            // lint: allow(wetlab-under-lock): commit-phase merge of pre-synthesized rewrites; synthesis ran lock-free above
            tube.mix_in(&rewrites, 1.0, dilution);
            shard.epoch += 1;
            self.journal_append(JournalRecord::Compact {
                pid: pid.0 as u64,
                epoch: shard.epoch,
            })?;
            return Ok(CompactionReport {
                partitions_compacted: 1,
                blocks_rebased: reclaimed.rebased_blocks.len(),
                units_reclaimed,
                species_retired,
                rewrites_synthesized: reclaimed.rebased_blocks.len() as u64,
                synthesis_cost,
                rebased,
            });
        }
    }

    /// Compacts the shared DedicatedLog partition: folds every logged patch
    /// into its target block's logical image across *all* DedicatedLog
    /// partitions, rebases those blocks with fresh base units, retires the
    /// entire log (plus the superseded base units) from the tubes, and
    /// resets the log to empty. Reads of any DedicatedLog block afterwards
    /// skip the whole-log round entirely.
    ///
    /// This is the one deliberately cross-shard operation: it locks every
    /// DedicatedLog shard (ascending id) and then the log shard — the
    /// documented global lock order — and holds them for the duration, so
    /// the fold is atomic with respect to every reader and writer it
    /// affects. Shards on other layouts are never touched.
    ///
    /// No-op (empty report) when no log exists or it has no entries.
    ///
    /// # Errors
    ///
    /// See [`BlockStore::compact_partition`].
    pub fn compact_log(&self) -> Result<CompactionReport, StoreError> {
        let dir = self.dir_read();
        let Some(log_pid) = dir.log_pid else {
            return Ok(CompactionReport::default());
        };
        // Lock order: DedicatedLog data shards ascending, log shard last.
        let mut guards: Vec<(usize, RankedMutexGuard<'_, PartitionShard>)> = Vec::new();
        for (pid, cell) in dir.shards.iter().enumerate() {
            if pid == log_pid {
                continue;
            }
            let shard = cell.lock().expect("shard lock");
            if shard.partition.config().layout == UpdateLayout::DedicatedLog {
                guards.push((pid, shard));
            }
        }
        let mut log = dir.shards[log_pid].lock().expect("shard lock");
        if log.log_head == 0 {
            return Ok(CompactionReport::default());
        }
        let log_tag = log.partition.config().partition_tag;
        let mut report = CompactionReport {
            partitions_compacted: 1, // the log itself
            units_reclaimed: log.log_head,
            ..CompactionReport::default()
        };
        // Phase 1 — re-encode every fresh base unit first, the only
        // fallible step, so an error leaves every shard untouched (no data
        // is destroyed before its replacement exists).
        let mut designs_per_shard: Vec<Vec<Molecule>> = Vec::with_capacity(guards.len());
        for (pid, shard) in &guards {
            let mut designs = Vec::new();
            for (block, _) in shard.partition.updated_blocks() {
                let image = shard
                    .logical
                    .get(&block)
                    .ok_or(StoreError::BlockNotWritten(block))?;
                designs.extend(shard.partition.encode_unit(block, VersionSlot(0), image));
                report.rebased.push((PartitionId(*pid), block));
            }
            designs_per_shard.push(designs);
        }
        // Phase 2 — infallible from here: fold bookkeeping, retire the
        // superseded molecules from each shard's tube, and mix the fresh
        // base units into their home tubes.
        for ((_, shard), designs) in guards.iter_mut().zip(&designs_per_shard) {
            let tag = shard.partition.config().partition_tag;
            let reclaimed = Arc::make_mut(&mut shard.partition).reclaim_updates();
            if reclaimed.rebased_blocks.is_empty() {
                continue;
            }
            report.partitions_compacted += 1;
            let stale: BTreeSet<u64> = reclaimed.rebased_blocks.iter().map(|&(b, _)| b).collect();
            let mut rng = shard.split_rng();
            // lint: allow(wetlab-under-lock): compact_log is the one documented cross-shard exception — it deliberately holds every affected shard for an atomic fold
            let (rewrites, cost) = self.instruments.synthesize_rewrites(designs, &mut rng);
            // Dilution reference: this shard's tube before retirement.
            let dilution = self
                .instruments
                .rewrite_dilution(&shard.tube, &rewrites, &mut rng);
            let tube = Arc::make_mut(&mut shard.tube);
            report.species_retired +=
                tube.retire_where(|t| t.partition == tag && stale.contains(&t.unit));
            report.units_reclaimed += stale.len() as u64; // superseded bases
            report.blocks_rebased += reclaimed.rebased_blocks.len();
            // lint: allow(wetlab-under-lock): atomic cross-shard fold (see above); merge of pre-synthesized molecules
            tube.mix_in(&rewrites, 1.0, dilution);
            report.synthesis_cost += cost;
            shard.epoch += 1;
        }
        report.species_retired +=
            Arc::make_mut(&mut log.tube).retire_where(|t| t.partition == log_tag);
        Arc::make_mut(&mut log.partition).reclaim_all();
        log.log_head = 0;
        log.log_seq = 0;
        log.epoch += 1;
        self.journal_append(JournalRecord::CompactLog { epoch: log.epoch })?;
        report.rewrites_synthesized = report.blocks_rebased as u64;
        Ok(report)
    }

    // ----- sequential reads ------------------------------------------------

    /// Reads one block through the full wetlab path: precise PCR with the
    /// block's elongated primer (multiplexed with chain/region primers as
    /// the layout requires), sequencing, clustering, trace reconstruction,
    /// RS decoding and patch application. Follows overflow pointers with
    /// extra round-trips when present.
    ///
    /// The whole wetlab/decode phase runs against a shard snapshot with no
    /// locks held; the result is linearized at snapshot time.
    ///
    /// # Errors
    ///
    /// [`StoreError::DecodeFailed`] if any required unit cannot be
    /// recovered.
    pub fn read_block(&self, pid: PartitionId, block: u64) -> Result<BlockReadOutcome, StoreError> {
        let (mut snap, log) = self.snapshot_for_read(pid.0)?;
        let layout = snap.partition.config().layout;
        let mut stats = ReadProtocolStats {
            pcr_rounds: 0,
            reads_sequenced: 0,
            reads_matched: 0,
            clusters_used: 0,
        };
        // Round 1: the block's leaf (plus the update region for TwoStacks).
        let (mut current, mut patches): (Block, Vec<UpdatePatch>) = match layout {
            UpdateLayout::Interleaved { update_slots } => read_interleaved(
                &self.instruments,
                &mut snap,
                block,
                update_slots,
                &mut stats,
            )?,
            UpdateLayout::TwoStacks => {
                read_two_stacks(&self.instruments, &mut snap, block, &mut stats)?
            }
            UpdateLayout::DedicatedLog => read_with_dedicated_log(
                &self.instruments,
                &mut snap,
                log.as_ref(),
                block,
                &mut stats,
            )?,
        };
        let patches_applied = patches.len();
        for patch in patches.drain(..) {
            current = patch.apply(&current)?;
        }
        Ok(BlockReadOutcome {
            block: current,
            patches_applied,
            stats,
        })
    }

    /// Reads a contiguous block range via one multiplexed precise PCR
    /// (§3.1 prefix cover). Updates are applied per block.
    ///
    /// Implemented on top of [`BlockStore::read_blocks_batch`]: the batch
    /// planner recognizes the contiguous run and covers it with weighted
    /// range prefixes in a single multiplex round, then decodes every block
    /// in parallel.
    ///
    /// # Errors
    ///
    /// Fails if any block in the range cannot be decoded.
    pub fn read_range(&self, pid: PartitionId, lo: u64, hi: u64) -> Result<Vec<Block>, StoreError> {
        let requests: Vec<(PartitionId, u64)> = (lo..=hi).map(|b| (pid, b)).collect();
        let batch = self.read_blocks_batch(&requests)?;
        batch
            .outcomes
            .into_iter()
            .map(|r| r.map(|o| o.block))
            .collect()
    }
}

/// Splits one reaction's forward-primer budget across a weighted scope so
/// every covered leaf amplifies evenly (§3.2's concentration invariant).
fn weighted_forward_primers(scope: &[(DnaSeq, f64)], budget: f64) -> Vec<PcrPrimer> {
    let total_weight: f64 = scope.iter().map(|(_, w)| w.max(1e-9)).sum();
    scope
        .iter()
        .map(|(p, w)| PcrPrimer::with_budget(p.clone(), budget * w.max(1e-9) / total_weight))
        .collect()
}

impl Instruments {
    /// Reads to sequence when `expected_units` encoding units are in scope
    /// (15 strands per unit at the configured coverage). Shared by the
    /// sequential and batched paths.
    fn reads_to_sequence(&self, expected_units: usize) -> usize {
        expected_units.max(1) * 15 * self.coverage
    }

    /// Runs one precise PCR (multiplexed over weighted `primers`) on the
    /// reaction tube and sequences the product. Primer budgets are
    /// proportional to each primer's weight (the number of leaves it
    /// covers), so every leaf in scope amplifies evenly (§3.2). The primer
    /// budget is 20× the tube's template count, so cycles end in template
    /// competition rather than primer exhaustion.
    ///
    /// Streams the sequenced reads into `out` (cleared first) so chained
    /// rounds — the interleaved layout's pointer-hop loop, the dedicated
    /// log's data+log pair — reuse one read buffer and one sequencer
    /// scratch instead of allocating per round.
    #[allow(clippy::too_many_arguments)]
    fn run_retrieval_into(
        &self,
        tube: &Pool,
        primers: &[(DnaSeq, f64)],
        rev: &DnaSeq,
        expected_units: usize,
        rng: &mut DetRng,
        scratch: &mut SequencerScratch,
        out: &mut Vec<Read>,
    ) {
        let budget = tube.total_copies() * 20.0;
        let rxn = PcrReaction {
            forward_primers: weighted_forward_primers(primers, budget),
            reverse_primer: PcrPrimer::with_budget(rev.clone(), budget),
            protocol: PcrProtocol::paper_block_access(),
        };
        let amplified = rxn.run(tube);
        let n_reads = self.reads_to_sequence(expected_units);
        out.clear();
        self.sequencer
            .sequence_into(&amplified.pool, n_reads, rng, scratch, out);
    }

    /// Synthesizes small-batch designs with the IDT vendor model (the
    /// update / compaction-rewrite path). Lock-free: callers run this
    /// against a snapshot RNG stream. Returns the raw synthesis pool and
    /// the synthesis cost in dollars.
    fn synthesize_rewrites(&self, designs: &[Molecule], rng: &mut DetRng) -> (Pool, f64) {
        if designs.is_empty() {
            return (Pool::new(), 0.0);
        }
        let pool = self.idt.synthesize(designs, rng);
        let cost = self.idt.synthesis_cost(designs.len(), designs[0].seq.len());
        (pool, cost)
    }

    /// The §6.4.2 dilution that brings a synthesized rewrite pool down to
    /// `reference`'s per-oligo concentration. The reference must be a
    /// *data* pool — in a sharded rack that is the target partition's tube
    /// for an in-partition rewrite, and the *updated block's* data tube
    /// for a shared-log append (the log tube itself starts empty, and an
    /// empty reference would admit raw small-batch concentrate at ~50000×
    /// the archive — exactly the §5.5 skew that starves every co-channel
    /// of a multiplexed round of sequencing output).
    ///
    /// Falls back to no dilution only when the reference holds nothing at
    /// all (then the rewrites *are* the tube).
    fn rewrite_dilution(&self, reference: &Pool, rewrites: &Pool, rng: &mut DetRng) -> f64 {
        if rewrites.is_empty() {
            return 1.0;
        }
        let data_per_oligo =
            self.nanodrop
                .measure_per_oligo(reference, reference.distinct().max(1), rng);
        let rewrite_per_oligo =
            self.nanodrop
                .measure_per_oligo(rewrites, rewrites.distinct().max(1), rng);
        if data_per_oligo > 0.0 {
            (data_per_oligo / rewrite_per_oligo).min(1.0)
        } else {
            1.0
        }
    }
}

// ----- sequential layout-specific read paths (snapshot-based) --------------

fn read_interleaved(
    instruments: &Instruments,
    snap: &mut ShardSnapshot,
    block: u64,
    update_slots: u8,
    stats: &mut ReadProtocolStats,
) -> Result<(Block, Vec<UpdatePatch>), StoreError> {
    let partition = &snap.partition;
    let mut patches = Vec::new();
    let mut original: Option<Block> = None;
    let mut leaf = block;
    // One read buffer and sequencer scratch for the whole pointer chain.
    let mut reads: Vec<Read> = Vec::new();
    let mut seq_scratch = SequencerScratch::new();
    // Follow the pointer chain; the common case is a single round-trip.
    for _hop in 0..64 {
        let prefix = partition.elongated_primer(leaf);
        let rev = partition.primers().reverse().clone();
        let live = partition.live_version_slots(leaf);
        let cfg = partition.decode_config_versions(leaf, &live);
        instruments.run_retrieval_into(
            &snap.tube,
            &[(prefix.clone(), 1.0)],
            &rev,
            4,
            &mut snap.rng,
            &mut seq_scratch,
            &mut reads,
        );
        stats.pcr_rounds += 1;
        stats.reads_sequenced += reads.len();
        let outcome = decode_block_validated(&reads, &prefix, &rev, &cfg, unit_checksum_ok);
        stats.reads_matched += outcome.reads_matched;
        stats.clusters_used = outcome.clusters_used;
        // Every metadata-live slot must have decoded; a missing one is
        // a hole in the patch chain and returning the block without it
        // would serve stale bytes.
        require_live_versions(&outcome, &live, block, leaf)?;
        let mut next_leaf = None;
        for (base, v) in &outcome.versions {
            let slot = VersionSlot::from_base(*base);
            let content =
                Block::from_unit_bytes(&v.unit_bytes).map_err(|_| StoreError::DecodeFailed {
                    block,
                    reason: format!("unit checksum at leaf {leaf} slot {}", slot.0),
                })?;
            if leaf == block && slot.0 == 0 {
                original = Some(content);
            } else if slot.0 == update_slots {
                // pointer slot
                match parse_pointer_block(&content) {
                    Some(target) => next_leaf = Some(target),
                    None => {
                        return Err(StoreError::DecodeFailed {
                            block,
                            reason: format!("malformed pointer at leaf {leaf}"),
                        })
                    }
                }
            } else {
                patches.push((leaf, slot.0, UpdatePatch::from_block(&content)?));
            }
        }
        if outcome.versions.is_empty() && leaf == block {
            return Err(StoreError::DecodeFailed {
                block,
                reason: "no versions recovered".to_string(),
            });
        }
        match next_leaf {
            Some(target) => leaf = target,
            None => break,
        }
    }
    let original = original.ok_or(StoreError::DecodeFailed {
        block,
        reason: "original version missing".to_string(),
    })?;
    // Patches are already in (hop, slot) order: chain hops were visited
    // chronologically and slots sort by version base.
    let ordered = patches.into_iter().map(|(_, _, p)| p).collect();
    Ok((original, ordered))
}

fn read_two_stacks(
    instruments: &Instruments,
    snap: &mut ShardSnapshot,
    block: u64,
    stats: &mut ReadProtocolStats,
) -> Result<(Block, Vec<UpdatePatch>), StoreError> {
    let partition = &snap.partition;
    let rev = partition.primers().reverse().clone();
    let update_leaves: Vec<u64> = partition.chain_of(block).to_vec();
    // Fig. 7 cost: the block plus the ENTIRE used update region must be
    // amplified, with primer concentrations weighted by covered leaves.
    let stack_updates = partition.stack_update_count();
    let mut scope: Vec<(DnaSeq, f64)> = vec![(partition.elongated_primer(block), 1.0)];
    if stack_updates > 0 {
        let lo = partition.num_leaves() - stack_updates;
        let hi = partition.num_leaves() - 1;
        scope.extend(partition.range_prefixes_weighted(lo, hi));
    }
    let expected_units = 1 + stack_updates as usize;
    let mut reads: Vec<Read> = Vec::new();
    instruments.run_retrieval_into(
        &snap.tube,
        &scope,
        &rev,
        expected_units,
        &mut snap.rng,
        &mut SequencerScratch::new(),
        &mut reads,
    );
    stats.pcr_rounds += 1;
    stats.reads_sequenced += reads.len();
    // Decode the block itself. TwoStacks data leaves only ever hold the
    // base version, so the decode is pinned to it — noise claiming a
    // retired or foreign version base can never become a phantom patch.
    let prefix = partition.elongated_primer(block);
    let cfg = partition.decode_config_versions(block, &[VersionSlot(0)]);
    let outcome = decode_block_validated(&reads, &prefix, &rev, &cfg, unit_checksum_ok);
    stats.reads_matched += outcome.reads_matched;
    let (original, _) = interpret_interleaved(&outcome, block)?;
    // Decode this block's update leaves (known from metadata; their
    // content is self-ordering via version slots 0 at distinct leaves).
    let mut patches = Vec::new();
    for &leaf in &update_leaves {
        let prefix = partition.elongated_primer(leaf);
        let cfg = partition.decode_config_versions(leaf, &[VersionSlot(0)]);
        let o = decode_block_validated(&reads, &prefix, &rev, &cfg, unit_checksum_ok);
        stats.reads_matched += o.reads_matched;
        if let Some(v) = o.versions.get(&Base::A) {
            let content =
                Block::from_unit_bytes(&v.unit_bytes).map_err(|_| StoreError::DecodeFailed {
                    block,
                    reason: format!("update unit at leaf {leaf}"),
                })?;
            patches.push(UpdatePatch::from_block(&content)?);
        } else {
            return Err(StoreError::DecodeFailed {
                block,
                reason: format!("update leaf {leaf} unrecovered"),
            });
        }
    }
    Ok((original, patches))
}

fn read_with_dedicated_log(
    instruments: &Instruments,
    snap: &mut ShardSnapshot,
    log: Option<&LogSnapshot>,
    block: u64,
    stats: &mut ReadProtocolStats,
) -> Result<(Block, Vec<UpdatePatch>), StoreError> {
    // Round 1: the data block (base version only under this layout),
    // amplified from this shard's own tube.
    let partition = &snap.partition;
    let prefix = partition.elongated_primer(block);
    let rev = partition.primers().reverse().clone();
    let cfg = partition.decode_config_versions(block, &[VersionSlot(0)]);
    // One read buffer and sequencer scratch shared by both rounds.
    let mut reads: Vec<Read> = Vec::new();
    let mut seq_scratch = SequencerScratch::new();
    instruments.run_retrieval_into(
        &snap.tube,
        &[(prefix.clone(), 1.0)],
        &rev,
        2,
        &mut snap.rng,
        &mut seq_scratch,
        &mut reads,
    );
    stats.pcr_rounds += 1;
    stats.reads_sequenced += reads.len();
    let outcome = decode_block_validated(&reads, &prefix, &rev, &cfg, unit_checksum_ok);
    stats.reads_matched += outcome.reads_matched;
    let (original, _) = interpret_interleaved(&outcome, block)?;
    // Round 2: the ENTIRE shared log (the §5.3 Fig. 6 cost) from the log
    // tube — skipped outright when compaction has folded the log back to
    // empty.
    let mut patches = Vec::new();
    if let Some(log) = log.filter(|l| l.head > 0) {
        let log_fwd = log.partition.scope_primer();
        let log_rev = log.partition.primers().reverse().clone();
        let entries = log.head;
        instruments.run_retrieval_into(
            &log.tube,
            &[(log_fwd.clone(), 1.0)],
            &log_rev,
            entries as usize + 1,
            &mut snap.rng,
            &mut seq_scratch,
            &mut reads,
        );
        stats.pcr_rounds += 1;
        stats.reads_sequenced += reads.len();
        let mut found: Vec<(u32, UpdatePatch)> = Vec::new();
        for leaf in 0..entries {
            let prefix = log.partition.elongated_primer(leaf);
            let cfg = log
                .partition
                .decode_config_versions(leaf, &[VersionSlot(0)]);
            let o = decode_block_validated(&reads, &prefix, &log_rev, &cfg, unit_checksum_ok);
            stats.reads_matched += o.reads_matched;
            // As in the batch path: an unrecovered entry might target
            // this block, so the read must fail rather than skip it.
            let v = o.versions.get(&Base::A).ok_or(StoreError::DecodeFailed {
                block,
                reason: format!("log entry {leaf} unrecovered"),
            })?;
            if let Ok(content) = Block::from_unit_bytes(&v.unit_bytes) {
                found.extend(log_patch_for(&content, snap.pid as u32, block));
            }
        }
        found.sort_by_key(|&(seq, _)| seq);
        patches.extend(found.into_iter().map(|(_, p)| p));
    }
    Ok((original, patches))
}

/// Parses a decoded log-entry unit, returning `(seq, patch)` when the entry
/// targets `(pid, block)`.
fn log_patch_for(content: &Block, pid: u32, block: u64) -> Option<(u32, UpdatePatch)> {
    let (epid, eblock, seq, patch) = parse_log_entry(content)?;
    (epid == pid && eblock == block).then_some((seq, patch))
}

/// Fails a read when any version slot the partition metadata says is live
/// at `leaf` was not decoded — whether it was observed-but-unrecoverable
/// (also reported in `failed_versions`) or never observed at all (e.g.
/// coverage starvation sampled zero surviving reads for that slot).
/// Serving the block without it would silently return stale bytes.
fn require_live_versions(
    outcome: &BlockDecodeOutcome,
    live: &[VersionSlot],
    block: u64,
    leaf: u64,
) -> Result<(), StoreError> {
    for slot in live {
        if !outcome.versions.contains_key(&slot.base()) {
            return Err(StoreError::DecodeFailed {
                block,
                reason: format!("version slot {} at leaf {leaf} unrecovered", slot.0),
            });
        }
    }
    Ok(())
}

/// Extracts the original block and its in-leaf patches from a decode
/// outcome (Interleaved semantics: slot 0 = original, others = patches).
fn interpret_interleaved(
    outcome: &BlockDecodeOutcome,
    block: u64,
) -> Result<(Block, Vec<UpdatePatch>), StoreError> {
    let original = outcome
        .versions
        .get(&Base::A)
        .ok_or(StoreError::DecodeFailed {
            block,
            reason: "original version missing".to_string(),
        })
        .and_then(|v| {
            Block::from_unit_bytes(&v.unit_bytes).map_err(|_| StoreError::DecodeFailed {
                block,
                reason: "unit checksum".to_string(),
            })
        })?;
    let mut patches = Vec::new();
    for (base, v) in &outcome.versions {
        if *base == Base::A {
            continue;
        }
        let content =
            Block::from_unit_bytes(&v.unit_bytes).map_err(|_| StoreError::DecodeFailed {
                block,
                reason: "update unit checksum".to_string(),
            })?;
        if parse_pointer_block(&content).is_none() {
            patches.push(UpdatePatch::from_block(&content)?);
        }
    }
    Ok((original, patches))
}

/// Serializes a DedicatedLog entry: marker, partition, block, sequence
/// number, then the patch wire format.
fn log_entry_block(pid: u32, block: u64, seq: u32, patch: &UpdatePatch) -> Block {
    let mut bytes = vec![0xFEu8];
    bytes.extend_from_slice(&pid.to_le_bytes());
    bytes.extend_from_slice(&block.to_le_bytes());
    bytes.extend_from_slice(&seq.to_le_bytes());
    let wire = patch.to_block();
    bytes.push(wire.data[0]);
    bytes.push(wire.data[1]);
    bytes.push(wire.data[2]);
    bytes.push(wire.data[3]);
    bytes.extend_from_slice(&patch.ins_bytes);
    Block::from_bytes(&bytes).expect("log entry fits")
}

/// Parses a DedicatedLog entry.
fn parse_log_entry(block: &Block) -> Option<(u32, u64, u32, UpdatePatch)> {
    let d = &block.data;
    if d[0] != 0xFE {
        return None;
    }
    let pid = u32::from_le_bytes(d[1..5].try_into().ok()?);
    let target = u64::from_le_bytes(d[5..13].try_into().ok()?);
    let seq = u32::from_le_bytes(d[13..17].try_into().ok()?);
    let ins_len = usize::from(d[20]);
    if 21 + ins_len > d.len() {
        return None;
    }
    let patch = UpdatePatch::new(d[17], d[18], d[19], d[21..21 + ins_len].to_vec()).ok()?;
    Some((pid, target, seq, patch))
}

// ----- batched retrieval ---------------------------------------------------

/// Everything one multiplex round needs, captured from shard snapshots so
/// the round can execute with no locks held (and concurrently with other
/// rounds — rounds never share a data shard by construction).
struct RoundInput {
    /// Snapshots of this round's partitions, ascending pid.
    shards: Vec<ShardSnapshot>,
    /// The shared-log duty, present only in the designated carrier round
    /// (the first round containing a DedicatedLog partition): the log is
    /// amplified and decoded at most once per batch call.
    log: Option<LogDuty>,
}

/// The carrier round's view of the shared log.
struct LogDuty {
    pid: usize,
    partition: Arc<Partition>,
    tube: Arc<Pool>,
    head: u64,
}

/// What one executed round hands back for merging: decode outcomes in
/// submission order with their `(pid, leaf)` keys, plus round-level stats.
struct RoundOutput {
    jobs: Vec<(usize, u64)>,
    outcomes: Vec<BlockDecodeOutcome>,
    reads_sequenced: usize,
    primer_pairs: usize,
}

/// Decode state merged across the rounds of one batch call, in round
/// order: outcomes indexed by `(pid, leaf)`, each remembering the round
/// that produced it (per-request read statistics count only the request's
/// own round's wetlab work).
#[derive(Default)]
struct BatchCtx {
    job_index: BTreeMap<(usize, u64), usize>,
    decoded: Vec<BlockDecodeOutcome>,
    job_round: Vec<usize>,
    round_reads: Vec<usize>,
}

impl BlockStore {
    /// Reads many blocks — across any number of partitions — in as few PCR
    /// + sequencing round-trips as primer chemistry allows.
    ///
    /// The [`BatchPlanner`] groups the touched partitions into multiplex
    /// rounds subject to cross-dimer/Tm compatibility
    /// ([`dna_primers::MultiplexCompat`]); each round pipettes exactly its
    /// partitions' tubes into one reaction, runs one
    /// [`dna_sim::MultiplexPcrReaction`] with per-pair primer budgets, one
    /// sequencing pass, and a parallel software demultiplex + decode
    /// ([`dna_pipeline::decode_jobs_parallel`]). Rounds touch disjoint
    /// shard sets, so they execute **concurrently** on scoped threads,
    /// each against its own snapshot — with the per-round decode fan-out
    /// sized by [`dna_pipeline::thread_share`] so rounds share the cores.
    /// Contiguous runs of requested blocks are covered by §3.1 prefix
    /// primers; committed overflow-chain leaves, the TwoStacks update
    /// region, and the shared DedicatedLog partition ride in the same
    /// tube, so every block's updates arrive with it.
    ///
    /// Per-block failures are reported in
    /// [`BatchReadOutcome::outcomes`] without failing the batch.
    ///
    /// # Errors
    ///
    /// Fails as a whole only for requests naming an unknown partition.
    pub fn read_blocks_batch(
        &self,
        requests: &[(PartitionId, u64)],
    ) -> Result<BatchReadOutcome, StoreError> {
        self.read_blocks_batch_planned(requests, &BatchPlanner::paper_default())
    }

    /// As [`BlockStore::read_blocks_batch`], with an explicit planner
    /// (custom compatibility rules or per-round pair caps).
    ///
    /// # Errors
    ///
    /// Fails as a whole only for requests naming an unknown partition.
    pub fn read_blocks_batch_planned(
        &self,
        requests: &[(PartitionId, u64)],
        planner: &BatchPlanner,
    ) -> Result<BatchReadOutcome, StoreError> {
        // Snapshot phase: one consistent cut per touched shard, taken in
        // ascending pid order, log last. DedicatedLog shards stay locked
        // until the log is snapshotted so every (shard, log) pair is
        // atomic — an update holds its target shard across its whole log
        // append, so a pair taken under the shard lock is either entirely
        // pre-update or entirely post-update (never post-update bytes
        // with a pre-update epoch). Everything after runs lock-free.
        let pids: BTreeSet<usize> = requests.iter().map(|&(pid, _)| pid.0).collect();
        let mut cells = Vec::with_capacity(pids.len());
        for &pid in &pids {
            cells.push((pid, self.shard_cell(pid)?));
        }
        let log = self.log_cell();
        let mut snaps: BTreeMap<usize, ShardSnapshot> = BTreeMap::new();
        let mut log_needed = false;
        let mut dl_guards: Vec<RankedMutexGuard<'_, PartitionShard>> = Vec::new();
        for (pid, cell) in &cells {
            let mut shard = Self::lock_shard(cell);
            snaps.insert(*pid, shard.snapshot_state(*pid));
            if shard.partition.config().layout == UpdateLayout::DedicatedLog {
                log_needed = true;
                if log.as_ref().is_some_and(|&(log_pid, _)| log_pid != *pid) {
                    dl_guards.push(shard); // hold until the log snapshot
                }
            }
        }
        let log_snap = if log_needed {
            log.as_ref()
                .map(|(log_pid, log_cell)| Self::lock_shard(log_cell).log_state(*log_pid))
        } else {
            None
        };
        drop(dl_guards);
        let shard_epochs: BTreeMap<PartitionId, u64> = snaps
            .iter()
            .map(|(&pid, snap)| (PartitionId(pid), snap.epoch))
            .collect();

        // Group in-range requests by partition; out-of-range requests get
        // their error outcome immediately.
        let mut outcomes: Vec<Option<Result<BlockReadOutcome, StoreError>>> =
            vec![None; requests.len()];
        let mut by_partition: BTreeMap<usize, Vec<(usize, u64)>> = BTreeMap::new();
        for (i, &(pid, block)) in requests.iter().enumerate() {
            let capacity = snaps[&pid.0].partition.num_leaves();
            if block >= capacity {
                outcomes[i] = Some(Err(StoreError::BlockOutOfRange { block, capacity }));
            } else {
                by_partition.entry(pid.0).or_default().push((i, block));
            }
        }

        // Plan the rounds.
        let log_pair = log_snap.as_ref().map(|l| l.partition.primers().clone());
        let items = batch_plan_items(&by_partition, &snaps, log_pair.as_ref());
        let plan = planner.plan(&items);
        let mut stats = BatchStats {
            rounds: plan.num_rounds(),
            ..BatchStats::default()
        };

        // Assembly metadata, captured before snapshots move into rounds.
        let partitions: BTreeMap<usize, Arc<Partition>> = snaps
            .iter()
            .map(|(&pid, s)| (pid, Arc::clone(&s.partition)))
            .collect();
        let log_info = log_snap.as_ref().map(|l| (l.pid, l.head));
        let round_of: BTreeMap<usize, usize> = plan
            .rounds
            .iter()
            .enumerate()
            .flat_map(|(r, round)| round.items.iter().map(move |&p| (p, r)))
            .collect();

        // The shared log rides in at most one reaction per batch call: the
        // first round containing a DedicatedLog partition carries it;
        // later rounds reuse its decoded entries at assembly. A log that
        // compaction folded back to empty never enters any tube.
        let carrier = plan.rounds.iter().position(|round| {
            round
                .items
                .iter()
                .any(|p| partitions[p].config().layout == UpdateLayout::DedicatedLog)
        });
        let mut inputs: Vec<RoundInput> = Vec::with_capacity(plan.rounds.len());
        for (r, round) in plan.rounds.iter().enumerate() {
            let shards: Vec<ShardSnapshot> = round
                .items
                .iter()
                .map(|p| snaps.remove(p).expect("each pid in exactly one round"))
                .collect();
            let log = match (&log_snap, carrier == Some(r)) {
                (Some(l), true) if l.head > 0 => Some(LogDuty {
                    pid: l.pid,
                    partition: Arc::clone(&l.partition),
                    tube: Arc::clone(&l.tube),
                    head: l.head,
                }),
                _ => None,
            };
            inputs.push(RoundInput { shards, log });
        }

        // Execute: rounds touch disjoint shards, so they run concurrently
        // (one scoped thread each), sharing the decode cores fairly.
        let decode_threads = thread_share(inputs.len());
        let instruments = &self.instruments;
        let outputs: Vec<RoundOutput> = if inputs.len() <= 1 {
            inputs
                .into_iter()
                .map(|input| run_round(instruments, input, &by_partition, decode_threads))
                .collect()
        } else {
            std::thread::scope(|scope| {
                let by_partition = &by_partition;
                let handles: Vec<_> = inputs
                    .into_iter()
                    .map(|input| {
                        scope.spawn(move || {
                            run_round(instruments, input, by_partition, decode_threads)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("round worker panicked"))
                    .collect()
            })
        };

        // Merge in round order (deterministic regardless of scheduling).
        let mut ctx = BatchCtx::default();
        for (r, out) in outputs.into_iter().enumerate() {
            stats.primer_pairs += out.primer_pairs;
            stats.reads_sequenced += out.reads_sequenced;
            stats.decode_jobs += out.jobs.len();
            ctx.round_reads.push(out.reads_sequenced);
            for (key, outcome) in out.jobs.into_iter().zip(out.outcomes) {
                stats.reads_matched += outcome.reads_matched;
                let idx = ctx.decoded.len();
                ctx.decoded.push(outcome);
                ctx.job_round.push(r);
                ctx.job_index.insert(key, idx);
            }
        }

        // Assemble per-request outcomes from the merged decode state.
        for (&p, wants) in &by_partition {
            let my_round = round_of[&p];
            for &(req_idx, block) in wants {
                outcomes[req_idx] = Some(assemble_batch_outcome(
                    &partitions[&p],
                    p,
                    block,
                    my_round,
                    &ctx,
                    log_info,
                ));
            }
        }
        stats.wasted_reads = stats.reads_sequenced.saturating_sub(stats.reads_matched);
        Ok(BatchReadOutcome {
            outcomes: outcomes
                .into_iter()
                .map(|o| o.expect("every request resolved"))
                .collect(),
            stats,
            shard_epochs,
        })
    }

    /// Plans — without executing — the multiplex rounds a batch of
    /// requests would take under `planner`. A serving layer uses this to
    /// predict wetlab cost (e.g. rounds per coalesced batch) before
    /// committing a tube. Performs no wetlab work and does not advance any
    /// shard's RNG stream: planning twice gives the same rounds.
    ///
    /// # Errors
    ///
    /// Fails for requests naming an unknown partition (out-of-range block
    /// ids are simply absent from the plan, matching
    /// [`BlockStore::read_blocks_batch`]'s per-request error reporting).
    pub fn plan_batch(
        &self,
        requests: &[(PartitionId, u64)],
        planner: &BatchPlanner,
    ) -> Result<BatchPlan, StoreError> {
        let pids: BTreeSet<usize> = requests.iter().map(|&(pid, _)| pid.0).collect();
        let mut partitions: BTreeMap<usize, Arc<Partition>> = BTreeMap::new();
        for &pid in &pids {
            partitions.insert(pid, self.partition(PartitionId(pid))?);
        }
        let mut by_partition: BTreeMap<usize, Vec<(usize, u64)>> = BTreeMap::new();
        for (i, &(pid, block)) in requests.iter().enumerate() {
            if block < partitions[&pid.0].num_leaves() {
                by_partition.entry(pid.0).or_default().push((i, block));
            }
        }
        let log_pair = if partitions
            .values()
            .any(|p| p.config().layout == UpdateLayout::DedicatedLog)
        {
            self.log_snapshot().map(|l| l.partition.primers().clone())
        } else {
            None
        };
        Ok(planner.plan(&plan_items_from(
            &by_partition,
            &partitions,
            log_pair.as_ref(),
        )))
    }
}

/// One [`PlanItem`] per touched partition (a DedicatedLog partition drags
/// the shared log pair into its item).
fn batch_plan_items(
    by_partition: &BTreeMap<usize, Vec<(usize, u64)>>,
    snaps: &BTreeMap<usize, ShardSnapshot>,
    log_pair: Option<&PrimerPair>,
) -> Vec<PlanItem> {
    let partitions: BTreeMap<usize, Arc<Partition>> = snaps
        .iter()
        .map(|(&pid, s)| (pid, Arc::clone(&s.partition)))
        .collect();
    plan_items_from(by_partition, &partitions, log_pair)
}

fn plan_items_from(
    by_partition: &BTreeMap<usize, Vec<(usize, u64)>>,
    partitions: &BTreeMap<usize, Arc<Partition>>,
    log_pair: Option<&PrimerPair>,
) -> Vec<PlanItem> {
    by_partition
        .keys()
        .map(|&p| {
            let mut pairs = vec![partitions[&p].primers().clone()];
            if partitions[&p].config().layout == UpdateLayout::DedicatedLog {
                if let Some(pair) = log_pair {
                    pairs.push(pair.clone());
                }
            }
            PlanItem { id: p, pairs }
        })
        .collect()
}

/// Runs one multiplex round against its snapshots: pipette the round's
/// tubes into one reaction, amplify every target in it, sequence once,
/// and decode all leaves in parallel. Lock-free — the caller merged this
/// round's partitions from per-shard snapshots.
fn run_round(
    instruments: &Instruments,
    mut input: RoundInput,
    by_partition: &BTreeMap<usize, Vec<(usize, u64)>>,
    decode_threads: usize,
) -> RoundOutput {
    // The reaction tube: undiluted aliquots of exactly this round's tubes.
    let mut reaction = Pool::new();
    for snap in &input.shards {
        reaction.mix_in(&snap.tube, 1.0, 1.0);
    }
    if let Some(log) = &input.log {
        reaction.mix_in(&log.tube, 1.0, 1.0);
    }
    let budget = reaction.total_copies() * 20.0;

    // (weighted forward scope, reverse primer, encoding units covered)
    // per channel; budgets are assigned after the total unit count is
    // known so per-unit amplification stays even across channels.
    let mut pending: Vec<ChannelSpec> = Vec::new();
    let mut expected_units = 0usize;
    let mut jobs: Vec<DecodeJob> = Vec::new();
    let mut job_keys: Vec<(usize, u64)> = Vec::new();
    let mut job_index: BTreeMap<(usize, u64), usize> = BTreeMap::new();
    // Per channel: the main forward primer (software demultiplex key) and
    // the contiguous range of `jobs` belonging to the channel.
    let mut channel_fwd: Vec<DnaSeq> = Vec::new();
    let mut channel_jobs: Vec<std::ops::Range<usize>> = Vec::new();

    for snap in &input.shards {
        let p = snap.pid;
        let partition = &snap.partition;
        let channel_start = jobs.len();
        let rev = partition.primers().reverse().clone();
        let mut blocks: Vec<u64> = by_partition[&p].iter().map(|&(_, b)| b).collect();
        blocks.sort_unstable();
        blocks.dedup();
        // Cover contiguous runs with §3.1 prefix primers, weighted by
        // covered leaf count so the whole run amplifies evenly.
        let mut scope: Vec<(DnaSeq, f64)> = Vec::new();
        let mut run_start = blocks[0];
        let mut prev = blocks[0];
        for &b in &blocks[1..] {
            if b != prev + 1 {
                scope.extend(partition.range_prefixes_weighted(run_start, prev));
                run_start = b;
            }
            prev = b;
        }
        scope.extend(partition.range_prefixes_weighted(run_start, prev));
        // Every decode is pinned to the version slots the metadata says
        // are live at that leaf (see [`Partition::live_version_slots`]):
        // noise claiming a dead version base never decodes into a phantom
        // patch, and a live slot that fails to decode is a reportable
        // hole.
        let mut add_job =
            |jobs: &mut Vec<DecodeJob>, job_keys: &mut Vec<(usize, u64)>, leaf: u64| {
                job_index.entry((p, leaf)).or_insert_with(|| {
                    jobs.push(DecodeJob {
                        prefix: partition.elongated_primer(leaf),
                        reverse: rev.clone(),
                        config: partition
                            .decode_config_versions(leaf, &partition.live_version_slots(leaf)),
                    });
                    job_keys.push((p, leaf));
                    jobs.len() - 1
                });
            };
        for &b in &blocks {
            add_job(&mut jobs, &mut job_keys, b);
        }
        // Update scope: committed chain leaves / the TwoStacks update
        // region come along in the same tube (DedicatedLog patches live
        // in the shared log partition, handled once per batch below).
        // Sequencing depth is provisioned per encoding unit, counted
        // from the update metadata rather than a flat per-block
        // constant, so heavily-updated blocks keep their per-unit
        // coverage.
        let channel_units = match partition.config().layout {
            UpdateLayout::Interleaved { .. } => {
                // Units per block: the original plus every patch
                // (`writes_of`) plus one pointer unit per chain hop,
                // floored at the 2 units/block the range path budgets.
                let units = blocks
                    .iter()
                    .map(|&b| {
                        (partition.writes_of(b) as usize + partition.chain_of(b).len()).max(2)
                    })
                    .sum::<usize>();
                let mut chain: Vec<u64> = blocks
                    .iter()
                    .flat_map(|&b| partition.chain_of(b).iter().copied())
                    .collect();
                chain.sort_unstable();
                chain.dedup();
                for &leaf in &chain {
                    scope.push((partition.elongated_primer(leaf), 1.0));
                    add_job(&mut jobs, &mut job_keys, leaf);
                }
                units
            }
            UpdateLayout::TwoStacks => {
                let mut units = blocks.len() * 2;
                let stack = partition.stack_update_count();
                if stack > 0 {
                    let lo = partition.num_leaves() - stack;
                    let hi = partition.num_leaves() - 1;
                    scope.extend(partition.range_prefixes_weighted(lo, hi));
                    let mut leaves: Vec<u64> = blocks
                        .iter()
                        .flat_map(|&b| partition.chain_of(b).iter().copied())
                        .collect();
                    leaves.sort_unstable();
                    leaves.dedup();
                    for &leaf in &leaves {
                        add_job(&mut jobs, &mut job_keys, leaf);
                    }
                    units += stack as usize;
                }
                units
            }
            UpdateLayout::DedicatedLog => blocks.len() * 2,
        };
        expected_units += channel_units;
        pending.push(ChannelSpec {
            scope,
            reverse: rev,
            units: channel_units,
        });
        channel_fwd.push(partition.primers().forward().clone());
        channel_jobs.push(channel_start..jobs.len());
    }
    // The carrier round amplifies and decodes the whole shared log once;
    // other rounds' assemblies reuse the outcomes.
    if let Some(log) = &input.log {
        let channel_start = jobs.len();
        let log_fwd = log.partition.scope_primer();
        let log_rev = log.partition.primers().reverse().clone();
        for leaf in 0..log.head {
            job_index.entry((log.pid, leaf)).or_insert_with(|| {
                jobs.push(DecodeJob {
                    prefix: log.partition.elongated_primer(leaf),
                    reverse: log_rev.clone(),
                    config: log
                        .partition
                        .decode_config_versions(leaf, &[VersionSlot(0)]),
                });
                job_keys.push((log.pid, leaf));
                jobs.len() - 1
            });
        }
        let units = log.head as usize + 1;
        expected_units += units;
        pending.push(ChannelSpec {
            scope: vec![(log_fwd, units as f64)],
            reverse: log_rev,
            units,
        });
        channel_fwd.push(log.partition.primers().forward().clone());
        channel_jobs.push(channel_start..jobs.len());
    }

    // Each channel's primer budget is proportional to its share of the
    // units in scope (scaled so a single-channel round gets exactly the
    // sequential path's budget): the sequencing pass samples the tube
    // by abundance, so equal budgets would starve large-scope channels
    // of per-unit read depth.
    let total_units = expected_units.max(1) as f64;
    let channels: Vec<PrimerChannel> = pending
        .iter()
        .map(|spec| {
            let channel_budget =
                budget * (spec.units as f64) * (pending.len() as f64) / total_units;
            PrimerChannel {
                forward_primers: weighted_forward_primers(&spec.scope, channel_budget),
                reverse_primer: PcrPrimer::with_budget(spec.reverse.clone(), channel_budget),
            }
        })
        .collect();
    let primer_pairs = channels.len();

    let rxn = MultiplexPcrReaction {
        channels,
        protocol: PcrProtocol::paper_block_access(),
    };
    let amplified = rxn.run(&reaction);
    let n_reads = instruments.reads_to_sequence(expected_units);
    let rng = &mut input.shards[0].rng;
    let reads = instruments
        .sequencer
        .sequence(&amplified.pool, n_reads, rng);

    // Software demultiplex (one routing pass over the round's reads per
    // channel primer), then decode each channel's jobs against only its
    // own bucket — the per-round routing that keeps a multi-shard round's
    // decode cost linear instead of jobs × all-reads. A single-channel
    // round skips the routing pass outright. Routing is a superset of
    // every job's own prefix filter, so outcomes are bit-identical to the
    // unrouted path.
    let mut outcomes = Vec::with_capacity(jobs.len());
    if channel_jobs.len() <= 1 {
        decode_jobs_parallel_into(
            &reads,
            &jobs,
            unit_checksum_ok,
            decode_threads,
            &mut outcomes,
        );
    } else {
        let keys: Vec<ChannelPrimer> = channel_fwd
            .iter()
            .zip(&channel_jobs)
            .map(|(fwd, range)| {
                // A channel's job range can be empty: the log channel
                // dedups against jobs already registered by a data
                // channel (a caller batch-reading the log partition's own
                // leaves alongside a DedicatedLog partition). Its bucket
                // is then simply never decoded — any tolerance works.
                let tolerance = jobs
                    .get(range.start)
                    .map_or(0, |job| job.config.filter_max_edit);
                ChannelPrimer {
                    forward: fwd.clone(),
                    tolerance,
                }
            })
            .collect();
        let buckets = demux_reads(&reads, &keys);
        for (range, bucket) in channel_jobs.iter().zip(&buckets) {
            decode_jobs_parallel_into(
                bucket,
                &jobs[range.clone()],
                unit_checksum_ok,
                decode_threads,
                &mut outcomes,
            );
        }
    }
    RoundOutput {
        jobs: job_keys,
        outcomes,
        reads_sequenced: reads.len(),
        primer_pairs,
    }
}

/// Reconstructs one requested block from the batch's merged decode state,
/// mirroring the layout-specific single-read paths. Per-request read
/// statistics count only the request's own round's wetlab work, so leaves
/// reused from another round (the shared log) contribute their patches but
/// not their matched-read counts — `reads_matched` stays consistent with
/// `reads_sequenced`.
fn assemble_batch_outcome(
    partition: &Partition,
    p: usize,
    block: u64,
    my_round: usize,
    ctx: &BatchCtx,
    log_info: Option<(usize, u64)>,
) -> Result<BlockReadOutcome, StoreError> {
    let origin = &ctx.decoded[ctx.job_index[&(p, block)]];
    let mut stats = ReadProtocolStats {
        pcr_rounds: 1,
        reads_sequenced: ctx.round_reads[my_round],
        reads_matched: origin.reads_matched,
        clusters_used: origin.clusters_used,
    };
    let (original, patches) = match partition.config().layout {
        UpdateLayout::Interleaved { update_slots } => {
            let mut original = None;
            let mut patches = Vec::new();
            let mut leaves = vec![block];
            leaves.extend_from_slice(partition.chain_of(block));
            for (hop, &leaf) in leaves.iter().enumerate() {
                let outcome = &ctx.decoded[ctx.job_index[&(p, leaf)]];
                if hop > 0 {
                    stats.reads_matched += outcome.reads_matched;
                }
                // Every slot the metadata says is live here must have
                // decoded — a missing one is a hole in the patch chain.
                require_live_versions(outcome, &partition.live_version_slots(leaf), block, leaf)?;
                for (base, v) in &outcome.versions {
                    let slot = VersionSlot::from_base(*base);
                    let content = Block::from_unit_bytes(&v.unit_bytes).map_err(|_| {
                        StoreError::DecodeFailed {
                            block,
                            reason: format!("unit checksum at leaf {leaf} slot {}", slot.0),
                        }
                    })?;
                    if hop == 0 && slot.0 == 0 {
                        original = Some(content);
                    } else if slot.0 == update_slots {
                        // Pointer slot — the chain is already known from
                        // metadata, nothing to follow.
                    } else {
                        patches.push(UpdatePatch::from_block(&content)?);
                    }
                }
            }
            let original = original.ok_or(StoreError::DecodeFailed {
                block,
                reason: "original version missing".to_string(),
            })?;
            (original, patches)
        }
        UpdateLayout::TwoStacks => {
            let (original, _) = interpret_interleaved(origin, block)?;
            let mut patches = Vec::new();
            for &leaf in partition.chain_of(block) {
                let outcome = &ctx.decoded[ctx.job_index[&(p, leaf)]];
                stats.reads_matched += outcome.reads_matched;
                let v = outcome
                    .versions
                    .get(&Base::A)
                    .ok_or(StoreError::DecodeFailed {
                        block,
                        reason: format!("update leaf {leaf} unrecovered"),
                    })?;
                let content = Block::from_unit_bytes(&v.unit_bytes).map_err(|_| {
                    StoreError::DecodeFailed {
                        block,
                        reason: format!("update unit at leaf {leaf}"),
                    }
                })?;
                patches.push(UpdatePatch::from_block(&content)?);
            }
            (original, patches)
        }
        UpdateLayout::DedicatedLog => {
            let (original, _) = interpret_interleaved(origin, block)?;
            let mut found: Vec<(u32, UpdatePatch)> = Vec::new();
            if let Some((log_pid, head)) = log_info {
                for leaf in 0..head {
                    let Some(&job) = ctx.job_index.get(&(log_pid, leaf)) else {
                        continue;
                    };
                    let outcome = &ctx.decoded[job];
                    if ctx.job_round[job] == my_round {
                        stats.reads_matched += outcome.reads_matched;
                    }
                    // An unrecovered log entry could hold a patch for
                    // this very block: failing is the only answer that
                    // never serves stale bytes.
                    let v = outcome
                        .versions
                        .get(&Base::A)
                        .ok_or(StoreError::DecodeFailed {
                            block,
                            reason: format!("log entry {leaf} unrecovered"),
                        })?;
                    if let Ok(content) = Block::from_unit_bytes(&v.unit_bytes) {
                        found.extend(log_patch_for(&content, p as u32, block));
                    }
                }
            }
            found.sort_by_key(|&(seq, _)| seq);
            (
                original,
                found.into_iter().map(|(_, patch)| patch).collect(),
            )
        }
    };
    let patches_applied = patches.len();
    let mut current = original;
    for patch in patches {
        current = patch.apply(&current)?;
    }
    Ok(BlockReadOutcome {
        block: current,
        patches_applied,
        stats,
    })
}
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trip() {
        let store = BlockStore::new(1);
        let pid = store
            .create_partition(PartitionConfig::paper_default(11))
            .unwrap();
        let data = crate::workload::deterministic_text(3 * BLOCK_SIZE, 5);
        assert_eq!(store.write_file(pid, &data).unwrap(), 3);
        for b in 0..3u64 {
            let out = store.read_block(pid, b).unwrap();
            assert_eq!(
                out.block.data,
                &data[b as usize * BLOCK_SIZE..(b as usize + 1) * BLOCK_SIZE],
                "block {b}"
            );
            assert_eq!(out.patches_applied, 0);
            assert_eq!(out.stats.pcr_rounds, 1);
        }
    }

    #[test]
    fn update_then_read_applies_patch() {
        let store = BlockStore::new(2);
        let pid = store
            .create_partition(PartitionConfig::paper_default(12))
            .unwrap();
        let mut data = crate::workload::deterministic_text(2 * BLOCK_SIZE, 6);
        store.write_file(pid, &data).unwrap();
        // Edit a few bytes of block 1.
        data[BLOCK_SIZE + 10..BLOCK_SIZE + 15].copy_from_slice(b"EDIT!");
        store
            .update_block(pid, 1, &data[BLOCK_SIZE..2 * BLOCK_SIZE])
            .unwrap();
        let out = store.read_block(pid, 1).unwrap();
        assert_eq!(out.block.data, &data[BLOCK_SIZE..2 * BLOCK_SIZE]);
        assert_eq!(out.patches_applied, 1);
        // Unupdated block unaffected.
        let out0 = store.read_block(pid, 0).unwrap();
        assert_eq!(out0.block.data, &data[..BLOCK_SIZE]);
        assert_eq!(out0.patches_applied, 0);
    }

    #[test]
    fn multiple_updates_apply_in_order() {
        let store = BlockStore::new(3);
        let pid = store
            .create_partition(PartitionConfig::paper_default(13))
            .unwrap();
        let data = crate::workload::deterministic_text(BLOCK_SIZE, 7);
        store.write_file(pid, &data).unwrap();
        let mut current = data.clone();
        current[0..3].copy_from_slice(b"one");
        store.update_block(pid, 0, &current).unwrap();
        current[4..7].copy_from_slice(b"two");
        store.update_block(pid, 0, &current).unwrap();
        let out = store.read_block(pid, 0).unwrap();
        assert_eq!(out.block.data, current);
        assert_eq!(out.patches_applied, 2);
        assert_eq!(out.stats.pcr_rounds, 1, "direct slots need one round-trip");
    }

    #[test]
    fn overflow_chain_follows_pointers() {
        let store = BlockStore::new(4);
        let pid = store
            .create_partition(PartitionConfig::paper_default(14))
            .unwrap();
        let data = crate::workload::deterministic_text(BLOCK_SIZE, 8);
        store.write_file(pid, &data).unwrap();
        let mut current = data.clone();
        for i in 0..4u8 {
            current[i as usize] = b'A' + i;
            store.update_block(pid, 0, &current).unwrap();
        }
        let out = store.read_block(pid, 0).unwrap();
        assert_eq!(out.block.data, current);
        assert_eq!(out.patches_applied, 4);
        assert!(
            out.stats.pcr_rounds >= 2,
            "chain requires a second round-trip"
        );
    }

    #[test]
    fn read_range_returns_consecutive_blocks() {
        let store = BlockStore::new(5);
        let pid = store
            .create_partition(PartitionConfig::paper_default(15))
            .unwrap();
        let data = crate::workload::deterministic_text(5 * BLOCK_SIZE, 9);
        store.write_file(pid, &data).unwrap();
        let blocks = store.read_range(pid, 1, 3).unwrap();
        assert_eq!(blocks.len(), 3);
        for (i, b) in blocks.iter().enumerate() {
            let off = (i + 1) * BLOCK_SIZE;
            assert_eq!(b.data, &data[off..off + BLOCK_SIZE]);
        }
    }

    #[test]
    fn unknown_partition_and_block_errors() {
        let store = BlockStore::new(6);
        assert!(matches!(
            store.read_block(PartitionId(0), 0),
            Err(StoreError::UnknownPartition(0))
        ));
        let pid = store
            .create_partition(PartitionConfig::paper_default(16))
            .unwrap();
        assert!(matches!(
            store.update_block(pid, 0, &[0u8; 10]),
            Err(StoreError::BlockNotWritten(0))
        ));
    }

    #[test]
    fn batch_read_uses_one_round_for_one_partition() {
        // The acceptance bar: 8 blocks from one partition must cost
        // strictly fewer PCR rounds than 8 sequential reads, with
        // byte-identical contents.
        let store = BlockStore::new(7);
        let pid = store
            .create_partition(PartitionConfig::paper_default(17))
            .unwrap();
        let data = crate::workload::deterministic_text(8 * BLOCK_SIZE, 11);
        store.write_file(pid, &data).unwrap();
        let sequential: Vec<Block> = (0..8u64)
            .map(|b| store.read_block(pid, b).unwrap().block)
            .collect();
        let sequential_rounds: usize = 8; // one per read_block call
        let requests: Vec<(PartitionId, u64)> = (0..8u64).map(|b| (pid, b)).collect();
        let batch = store.read_blocks_batch(&requests).unwrap();
        assert!(
            batch.stats.rounds < sequential_rounds,
            "batch used {} rounds",
            batch.stats.rounds
        );
        assert_eq!(batch.stats.rounds, 1);
        assert_eq!(batch.stats.primer_pairs, 1);
        assert!(batch.stats.reads_sequenced > 0);
        for (i, outcome) in batch.outcomes.iter().enumerate() {
            let got = outcome.as_ref().unwrap();
            assert_eq!(got.block, sequential[i], "block {i} differs");
            assert_eq!(got.stats.pcr_rounds, 1);
        }
    }

    #[test]
    fn batch_read_spans_partitions_and_sees_updates() {
        let store = BlockStore::new(8);
        let a = store
            .create_partition(PartitionConfig::paper_default(18))
            .unwrap();
        let b = store
            .create_partition(PartitionConfig::paper_default(19))
            .unwrap();
        let data_a = crate::workload::deterministic_text(2 * BLOCK_SIZE, 21);
        let mut data_b = crate::workload::deterministic_text(2 * BLOCK_SIZE, 22);
        store.write_file(a, &data_a).unwrap();
        store.write_file(b, &data_b).unwrap();
        data_b[5..10].copy_from_slice(b"PATCH");
        store.update_block(b, 0, &data_b[..BLOCK_SIZE]).unwrap();
        let batch = store
            .read_blocks_batch(&[(a, 0), (b, 0), (a, 1), (b, 1)])
            .unwrap();
        assert!(batch.stats.rounds <= 2, "rounds {}", batch.stats.rounds);
        let blocks: Vec<&Block> = batch
            .outcomes
            .iter()
            .map(|o| &o.as_ref().unwrap().block)
            .collect();
        assert_eq!(blocks[0].data, &data_a[..BLOCK_SIZE]);
        assert_eq!(blocks[1].data, &data_b[..BLOCK_SIZE]);
        assert_eq!(blocks[2].data, &data_a[BLOCK_SIZE..]);
        assert_eq!(blocks[3].data, &data_b[BLOCK_SIZE..]);
        assert_eq!(batch.outcomes[1].as_ref().unwrap().patches_applied, 1);
        assert_eq!(
            batch.stats.wasted_reads,
            batch.stats.reads_sequenced - batch.stats.reads_matched
        );
    }

    #[test]
    fn batch_read_covers_overflow_chains_in_one_round() {
        // A heavily-updated block (direct slots full + overflow chain)
        // must batch-decode byte-exactly: sequencing depth is provisioned
        // per encoding unit from the update metadata, so the extra
        // versions don't starve the per-unit coverage.
        let store = BlockStore::new(11);
        let pid = store
            .create_partition(PartitionConfig::paper_default(26))
            .unwrap();
        let data = crate::workload::deterministic_text(2 * BLOCK_SIZE, 33);
        store.write_file(pid, &data).unwrap();
        let mut current = data.clone();
        for i in 0..4u8 {
            current[i as usize] = b'A' + i;
            store.update_block(pid, 0, &current[..BLOCK_SIZE]).unwrap();
        }
        let batch = store.read_blocks_batch(&[(pid, 0), (pid, 1)]).unwrap();
        assert_eq!(batch.stats.rounds, 1, "chain leaves ride the same tube");
        let updated = batch.outcomes[0].as_ref().unwrap();
        assert_eq!(updated.block.data, &current[..BLOCK_SIZE]);
        assert_eq!(updated.patches_applied, 4);
        let clean = batch.outcomes[1].as_ref().unwrap();
        assert_eq!(clean.block.data, &current[BLOCK_SIZE..]);
    }

    #[test]
    fn batch_read_reports_per_block_errors_without_failing() {
        let store = BlockStore::new(9);
        let pid = store
            .create_partition(PartitionConfig::paper_default(20))
            .unwrap();
        let data = crate::workload::deterministic_text(BLOCK_SIZE, 23);
        store.write_file(pid, &data).unwrap();
        // Block 0 exists; block 9999 is out of range; block 5 was never
        // written (decode failure).
        let batch = store
            .read_blocks_batch(&[(pid, 0), (pid, 9999), (pid, 5)])
            .unwrap();
        assert_eq!(
            batch.outcomes[0].as_ref().unwrap().block.data,
            &data[..BLOCK_SIZE]
        );
        assert!(matches!(
            batch.outcomes[1],
            Err(StoreError::BlockOutOfRange { block: 9999, .. })
        ));
        assert!(matches!(
            batch.outcomes[2],
            Err(StoreError::DecodeFailed { block: 5, .. })
        ));
        // Unknown partitions still fail the whole call.
        assert!(store.read_blocks_batch(&[(PartitionId(99), 0)]).is_err());
        // Empty batches are free.
        let empty = store.read_blocks_batch(&[]).unwrap();
        assert!(empty.outcomes.is_empty());
        assert_eq!(empty.stats.rounds, 0);
    }

    #[test]
    fn batch_matches_sequential_under_forced_round_split() {
        // A planner capped at one pair per round degenerates into
        // sequential-style rounds but must return the same bytes.
        let store = BlockStore::new(10);
        let a = store
            .create_partition(PartitionConfig::paper_default(24))
            .unwrap();
        let b = store
            .create_partition(PartitionConfig::paper_default(25))
            .unwrap();
        let data_a = crate::workload::deterministic_text(BLOCK_SIZE, 31);
        let data_b = crate::workload::deterministic_text(BLOCK_SIZE, 32);
        store.write_file(a, &data_a).unwrap();
        store.write_file(b, &data_b).unwrap();
        let planner = BatchPlanner {
            max_pairs_per_round: 1,
            ..BatchPlanner::paper_default()
        };
        let batch = store
            .read_blocks_batch_planned(&[(a, 0), (b, 0)], &planner)
            .unwrap();
        assert_eq!(batch.stats.rounds, 2);
        assert_eq!(
            batch.outcomes[0].as_ref().unwrap().block.data,
            &data_a[..BLOCK_SIZE]
        );
        assert_eq!(
            batch.outcomes[1].as_ref().unwrap().block.data,
            &data_b[..BLOCK_SIZE]
        );
    }

    #[test]
    fn overlapping_requests_decode_each_leaf_once() {
        // Regression: duplicate / overlapping requests (the shape produced
        // by overlapping read_range windows) must not re-decode a block
        // already fetched earlier in the same call.
        let store = BlockStore::new(12);
        let pid = store
            .create_partition(PartitionConfig::paper_default(27))
            .unwrap();
        let data = crate::workload::deterministic_text(4 * BLOCK_SIZE, 34);
        store.write_file(pid, &data).unwrap();
        // Ranges 0..=2 and 1..=3 overlap on blocks 1 and 2.
        let requests = [
            (pid, 0u64),
            (pid, 1),
            (pid, 2),
            (pid, 1),
            (pid, 2),
            (pid, 3),
        ];
        let batch = store.read_blocks_batch(&requests).unwrap();
        assert_eq!(batch.stats.decode_jobs, 4, "4 distinct leaves, 6 requests");
        assert_eq!(batch.stats.rounds, 1);
        for (i, &(_, b)) in requests.iter().enumerate() {
            let got = batch.outcomes[i].as_ref().unwrap();
            let off = b as usize * BLOCK_SIZE;
            assert_eq!(got.block.data, &data[off..off + BLOCK_SIZE], "request {i}");
        }
    }

    #[test]
    fn shared_log_decoded_once_across_rounds() {
        // Two DedicatedLog partitions forced into separate rounds both
        // need the shared log; it must be amplified and decoded in the
        // first round only, with the second round reusing the outcomes.
        let store = BlockStore::new(13);
        let mut cfg_a = PartitionConfig::paper_default(28);
        cfg_a.layout = UpdateLayout::DedicatedLog;
        let mut cfg_b = PartitionConfig::paper_default(29);
        cfg_b.layout = UpdateLayout::DedicatedLog;
        let a = store.create_partition(cfg_a).unwrap();
        let b = store.create_partition(cfg_b).unwrap();
        let mut data_a = crate::workload::deterministic_text(BLOCK_SIZE, 35);
        let mut data_b = crate::workload::deterministic_text(BLOCK_SIZE, 36);
        store.write_file(a, &data_a).unwrap();
        store.write_file(b, &data_b).unwrap();
        data_a[3..7].copy_from_slice(b"EDTA");
        store.update_block(a, 0, &data_a).unwrap();
        data_b[9..13].copy_from_slice(b"EDTB");
        store.update_block(b, 0, &data_b).unwrap();
        // Cap rounds at 2 pairs: partition + log fill a tube, so the two
        // partitions split into two rounds, both dragging the log pair.
        let planner = BatchPlanner {
            max_pairs_per_round: 2,
            ..BatchPlanner::paper_default()
        };
        let plan = store.plan_batch(&[(a, 0), (b, 0)], &planner).unwrap();
        assert_eq!(plan.num_rounds(), 2, "forced split: {plan:?}");
        let batch = store
            .read_blocks_batch_planned(&[(a, 0), (b, 0)], &planner)
            .unwrap();
        assert_eq!(batch.stats.rounds, 2);
        // 1 leaf per partition + 2 log entries decoded exactly once.
        assert_eq!(batch.stats.decode_jobs, 4, "{:?}", batch.stats);
        let got_a = batch.outcomes[0].as_ref().unwrap();
        assert_eq!(got_a.block.data, data_a);
        assert_eq!(got_a.patches_applied, 1);
        // The second round's partition still sees its log patch even
        // though its tube never amplified the log — and its per-request
        // stats stay self-consistent: matched reads never exceed the
        // reads its own round sequenced.
        let got_b = batch.outcomes[1].as_ref().unwrap();
        assert_eq!(got_b.block.data, data_b);
        assert_eq!(got_b.patches_applied, 1);
        for outcome in batch.outcomes.iter().map(|o| o.as_ref().unwrap()) {
            assert!(
                outcome.stats.reads_matched <= outcome.stats.reads_sequenced,
                "matched {} > sequenced {}",
                outcome.stats.reads_matched,
                outcome.stats.reads_sequenced
            );
        }
    }

    #[test]
    fn plan_batch_matches_executed_rounds() {
        let store = BlockStore::new(14);
        let a = store
            .create_partition(PartitionConfig::paper_default(37))
            .unwrap();
        let b = store
            .create_partition(PartitionConfig::paper_default(38))
            .unwrap();
        let data = crate::workload::deterministic_text(BLOCK_SIZE, 39);
        store.write_file(a, &data).unwrap();
        store.write_file(b, &data).unwrap();
        let planner = BatchPlanner::paper_default();
        let requests = [(a, 0u64), (b, 0u64)];
        let plan = store.plan_batch(&requests, &planner).unwrap();
        let batch = store
            .read_blocks_batch_planned(&requests, &planner)
            .unwrap();
        assert_eq!(plan.num_rounds(), batch.stats.rounds);
        // Planning performs no wetlab work: the store is immutable-borrow
        // only, and planning twice gives the same rounds.
        assert_eq!(plan, store.plan_batch(&requests, &planner).unwrap());
    }

    #[test]
    fn logical_contents_mirror_writes_and_updates() {
        let store = BlockStore::new(15);
        let pid = store
            .create_partition(PartitionConfig::paper_default(40))
            .unwrap();
        assert!(store.logical_block(pid, 0).is_none());
        let mut data = crate::workload::deterministic_text(2 * BLOCK_SIZE, 41);
        store.write_file(pid, &data).unwrap();
        assert_eq!(
            store.logical_block(pid, 0).unwrap().data,
            &data[..BLOCK_SIZE]
        );
        data[5..8].copy_from_slice(b"new");
        store.update_block(pid, 0, &data[..BLOCK_SIZE]).unwrap();
        assert_eq!(
            store.logical_block(pid, 0).unwrap().data,
            &data[..BLOCK_SIZE]
        );
        let all = store.logical_contents();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, (pid, 0));
        assert_eq!(all[1].0, (pid, 1));
    }

    #[test]
    fn compaction_round_trips_and_restores_headroom() {
        // Exhaust a small Interleaved partition's chain space, compact,
        // and verify the wetlab read path returns byte-identical content
        // from the rebased base unit — with the chain gone from the scope.
        let store = BlockStore::new(21);
        let pid = store
            .create_partition(PartitionConfig::small(
                0x91,
                3,
                UpdateLayout::paper_default(),
            ))
            .unwrap();
        let mut data = crate::workload::deterministic_text(2 * BLOCK_SIZE, 51);
        store.write_file(pid, &data).unwrap();
        for i in 0..6u8 {
            data[usize::from(i)] = b'A' + i;
            store.update_block(pid, 0, &data[..BLOCK_SIZE]).unwrap();
        }
        assert_eq!(store.retrieval_scope_units(pid, 0).unwrap(), 7);
        let before = store.read_block(pid, 0).unwrap();
        assert_eq!(before.block.data, &data[..BLOCK_SIZE]);
        assert!(before.stats.pcr_rounds > 1, "chain hops cost round-trips");

        let report = store.compact_partition(pid).unwrap();
        assert_eq!(report.blocks_rebased, 1);
        assert!(report.species_retired > 0);
        assert_eq!(store.retrieval_scope_units(pid, 0).unwrap(), 1);
        assert_eq!(
            store.update_headroom(pid, 0).unwrap(),
            2 + 62 * 3,
            "only blocks 0..=1 written: leaves 63..=2 are free again"
        );
        let after = store.read_block(pid, 0).unwrap();
        assert_eq!(after.block.data, &data[..BLOCK_SIZE], "rebased bytes");
        assert_eq!(after.patches_applied, 0);
        assert_eq!(after.stats.pcr_rounds, 1, "no chain to follow");
        assert!(after.stats.reads_sequenced < before.stats.reads_sequenced);
        // The untouched sibling block is unaffected.
        let sibling = store.read_block(pid, 1).unwrap();
        assert_eq!(sibling.block.data, &data[BLOCK_SIZE..]);
        // And updates flow again after the reclaim.
        data[9] = b'!';
        store.update_block(pid, 0, &data[..BLOCK_SIZE]).unwrap();
        let again = store.read_block(pid, 0).unwrap();
        assert_eq!(again.block.data, &data[..BLOCK_SIZE]);
        assert_eq!(again.patches_applied, 1);
    }

    #[test]
    fn compact_log_folds_all_dedicated_log_partitions() {
        let mut store = BlockStore::new(22);
        store
            .set_log_partition_config(PartitionConfig::small(
                0x92,
                2,
                UpdateLayout::paper_default(),
            ))
            .unwrap();
        let a = store
            .create_partition(PartitionConfig::small(0x93, 2, UpdateLayout::DedicatedLog))
            .unwrap();
        let b = store
            .create_partition(PartitionConfig::small(0x94, 2, UpdateLayout::DedicatedLog))
            .unwrap();
        let mut data_a = crate::workload::deterministic_text(BLOCK_SIZE, 52);
        let mut data_b = crate::workload::deterministic_text(BLOCK_SIZE, 53);
        store.write_file(a, &data_a).unwrap();
        store.write_file(b, &data_b).unwrap();
        for i in 0..3u8 {
            data_a[usize::from(i)] = b'a' + i;
            store.update_block(a, 0, &data_a).unwrap();
            data_b[usize::from(i)] = b'x' + i;
            store.update_block(b, 0, &data_b).unwrap();
        }
        assert_eq!(store.log_entries(), 6);
        assert_eq!(store.log_headroom(), 15 - 6);
        let before = store.read_block(a, 0).unwrap();
        assert_eq!(before.block.data, data_a);
        assert_eq!(before.stats.pcr_rounds, 2, "whole-log round");

        let report = store.compact_log().unwrap();
        assert_eq!(report.blocks_rebased, 2);
        assert_eq!(report.partitions_compacted, 3, "log + both partitions");
        // 6 log entries + 2 superseded base units.
        assert_eq!(report.units_reclaimed, 8);
        assert_eq!(store.log_entries(), 0);
        assert_eq!(store.log_headroom(), 15);

        let after_a = store.read_block(a, 0).unwrap();
        assert_eq!(after_a.block.data, data_a);
        assert_eq!(after_a.patches_applied, 0);
        assert_eq!(after_a.stats.pcr_rounds, 1, "empty log round skipped");
        assert!(after_a.stats.reads_sequenced < before.stats.reads_sequenced);
        let after_b = store.read_block(b, 0).unwrap();
        assert_eq!(after_b.block.data, data_b);
        // The log accepts fresh entries from leaf 0 again.
        data_a[9] = b'!';
        store.update_block(a, 0, &data_a).unwrap();
        assert_eq!(store.log_entries(), 1);
        let read = store.read_block(a, 0).unwrap();
        assert_eq!(read.block.data, data_a);
        assert_eq!(read.patches_applied, 1);
    }

    #[test]
    fn log_exhaustion_carries_context_and_headroom_predicts_it() {
        let mut store = BlockStore::new(23);
        store
            .set_log_partition_config(PartitionConfig::small(
                0x95,
                2,
                UpdateLayout::paper_default(),
            ))
            .unwrap();
        let pid = store
            .create_partition(PartitionConfig::small(0x96, 2, UpdateLayout::DedicatedLog))
            .unwrap();
        let mut data = crate::workload::deterministic_text(BLOCK_SIZE, 54);
        store.write_file(pid, &data).unwrap();
        for i in 0..15u8 {
            assert_eq!(store.update_headroom(pid, 0).unwrap(), u64::from(15 - i));
            data[usize::from(i)] = b'a' + i;
            store.update_block(pid, 0, &data).unwrap();
        }
        assert_eq!(store.update_headroom(pid, 0).unwrap(), 0);
        data[20] = b'!';
        let err = store.update_block(pid, 0, &data).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::UpdateSlotsExhausted {
                    block: 0,
                    layout: UpdateLayout::DedicatedLog,
                    chain_len: 15,
                    headroom: 0,
                }
            ),
            "unexpected error {err:?}"
        );
        // set_log_partition_config is rejected once the log exists.
        assert!(store
            .set_log_partition_config(PartitionConfig::paper_default(1))
            .is_err());
    }

    #[test]
    fn batch_reads_log_partition_leaves_alongside_dedicated_log_blocks() {
        // Regression: the shared log partition's pid is public
        // (partition_ids / log_partition_id), so a batch may request its
        // leaves directly *alongside* a DedicatedLog data block. The
        // log-duty channel then dedups every log job against the data
        // channel that already registered them, leaving an empty job
        // range — which must not panic the round (the demux key for an
        // empty range is never used).
        let mut store = BlockStore::new(31);
        store
            .set_log_partition_config(PartitionConfig::small(
                0x97,
                2,
                UpdateLayout::paper_default(),
            ))
            .unwrap();
        let pid = store
            .create_partition(PartitionConfig::small(0x98, 2, UpdateLayout::DedicatedLog))
            .unwrap();
        let mut data = crate::workload::deterministic_text(BLOCK_SIZE, 0x99);
        store.write_file(pid, &data).unwrap();
        data[0..4].copy_from_slice(b"EDIT");
        store.update_block(pid, 0, &data).unwrap(); // creates the log, 1 entry
        let log_pid = store.log_partition_id().unwrap();
        let batch = store.read_blocks_batch(&[(pid, 0), (log_pid, 0)]).unwrap();
        let dl = batch.outcomes[0].as_ref().unwrap();
        assert_eq!(dl.block.data, data);
        assert_eq!(dl.patches_applied, 1);
        // The log leaf itself decodes as a raw block: a serialized entry.
        let raw = batch.outcomes[1].as_ref().unwrap();
        assert!(parse_log_entry(&raw.block).is_some(), "entry wire format");
    }

    #[test]
    fn log_entry_round_trip() {
        let patch = UpdatePatch::new(3, 4, 5, b"body".to_vec()).unwrap();
        let blk = log_entry_block(7, 99, 12, &patch);
        let (pid, block, seq, got) = parse_log_entry(&blk).unwrap();
        assert_eq!((pid, block, seq), (7, 99, 12));
        assert_eq!(got, patch);
        // Non-entries rejected.
        assert!(parse_log_entry(&Block::zeroed()).is_none());
    }
}
