//! The end-to-end block store over the simulated wetlab.

use crate::batch::{BatchPlan, BatchPlanner, BatchStats, PlanItem};
use crate::block::{unit_checksum_ok, Block, BLOCK_SIZE};
use crate::compaction::CompactionReport;
use crate::layout::UpdateLayout;
use crate::partition::{parse_pointer_block, Partition, PartitionConfig, VersionSlot};
use crate::update::UpdatePatch;
use crate::StoreError;
use dna_pipeline::{
    decode_block_validated, decode_jobs_parallel_into, BlockDecodeOutcome, DecodeJob,
};
use dna_primers::{PrimerConstraints, PrimerLibrary, PrimerPair};
use dna_seq::rng::DetRng;
use dna_seq::{Base, DnaSeq};
use dna_sim::{
    IdsChannel, MultiplexPcrReaction, Nanodrop, PcrPrimer, PcrProtocol, PcrReaction, Pool,
    PrimerChannel, Read, Sequencer, SynthesisVendor,
};
use std::collections::BTreeMap;

/// Handle to a partition within a [`BlockStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PartitionId(pub usize);

/// Wetlab statistics of one block read.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadProtocolStats {
    /// PCR + sequencing round-trips (1 unless overflow pointers were
    /// followed).
    pub pcr_rounds: usize,
    /// Total reads sequenced.
    pub reads_sequenced: usize,
    /// Reads whose primer regions matched the target prefix.
    pub reads_matched: usize,
    /// Clusters reconstructed until coverage was complete (last round).
    pub clusters_used: usize,
}

/// Result of reading one block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockReadOutcome {
    /// The block content with all updates applied.
    pub block: Block,
    /// Number of update patches applied on top of the original.
    pub patches_applied: usize,
    /// Wetlab statistics.
    pub stats: ReadProtocolStats,
}

/// One channel of a multiplex round before budget assignment: the weighted
/// forward scope, the reverse primer, and the encoding units it covers.
struct ChannelSpec {
    scope: Vec<(DnaSeq, f64)>,
    reverse: DnaSeq,
    units: usize,
}

/// Decode state accumulated across the rounds of one batch call. A leaf
/// decoded in an earlier round (notably the shared DedicatedLog
/// partition's entries, which every DedicatedLog round would otherwise
/// re-amplify and re-decode) is reused by index instead of being decoded
/// again.
#[derive(Default)]
struct BatchDecodeCtx {
    /// `(partition, leaf)` → index into `decoded`.
    job_index: BTreeMap<(usize, u64), usize>,
    /// Outcomes in submission order, appended round by round.
    decoded: Vec<BlockDecodeOutcome>,
    /// Whether the shared log partition's entries were already amplified
    /// and decoded by an earlier round of this batch.
    log_decoded: bool,
}

/// Result of a batched multi-block retrieval
/// ([`BlockStore::read_blocks_batch`]).
#[derive(Debug, Clone)]
pub struct BatchReadOutcome {
    /// Per-request outcomes, in request order. A failed block does not
    /// poison the rest of the batch.
    pub outcomes: Vec<Result<BlockReadOutcome, StoreError>>,
    /// Aggregate wetlab statistics across all multiplex rounds.
    pub stats: BatchStats,
}

/// The full system: partitions, the archival DNA pool, and the simulated
/// instruments.
///
/// The store also keeps a *digital front-end cache* of logical block
/// contents (§5.4: "Most DNA-storage systems will have digital front-ends")
/// — used to compute update diffs; all read paths go through the wetlab.
#[derive(Debug, Clone)]
pub struct BlockStore {
    partitions: Vec<Partition>,
    logical: BTreeMap<(usize, u64), Block>,
    pool: Pool,
    rng: DetRng,
    twist: SynthesisVendor,
    idt: SynthesisVendor,
    sequencer: Sequencer,
    nanodrop: Nanodrop,
    primer_library: PrimerLibrary,
    primers_handed_out: usize,
    /// Reads sampled per expected strand during retrieval.
    coverage: usize,
    /// The shared update-log partition (created on demand for
    /// [`UpdateLayout::DedicatedLog`]).
    log_partition: Option<usize>,
    /// Configuration template for the log partition (its tag is forced to
    /// [`LOG_PARTITION_TAG`] at creation).
    log_config: PartitionConfig,
    /// Monotonic sequence number for log-layout updates.
    log_seq: u32,
    /// Next free leaf in the log partition.
    log_head: u64,
}

/// Ground-truth tag distinguishing shared-log strands in the simulator.
const LOG_PARTITION_TAG: u32 = 1000;

impl BlockStore {
    /// Creates a store with a deterministic seed. The seed drives primer
    /// library generation, synthesis skew and read sampling — two stores
    /// with the same seed and call sequence behave identically.
    pub fn new(seed: u64) -> BlockStore {
        let constraints = PrimerConstraints::paper_default(20);
        let primer_library =
            PrimerLibrary::generate_with_distance(&constraints, 8, 64, 400_000, seed ^ 0x9121);
        BlockStore {
            partitions: Vec::new(),
            logical: BTreeMap::new(),
            pool: Pool::new(),
            rng: DetRng::seed_from_u64(seed),
            twist: SynthesisVendor::twist(),
            idt: SynthesisVendor::idt(),
            sequencer: Sequencer::new(IdsChannel::illumina()),
            nanodrop: Nanodrop::benchtop(),
            primer_library,
            primers_handed_out: 0,
            coverage: 12,
            log_partition: None,
            log_config: PartitionConfig::paper_default(0x106),
            log_seq: 0,
            log_head: 0,
        }
    }

    /// Replaces the configuration template for the shared DedicatedLog
    /// partition (e.g. a smaller address space for exhaustion tests).
    ///
    /// # Errors
    ///
    /// Rejected once the log partition exists — its geometry is baked into
    /// every synthesized entry.
    pub fn set_log_partition_config(&mut self, config: PartitionConfig) -> Result<(), StoreError> {
        if self.log_partition.is_some() {
            return Err(StoreError::InvalidPatch(
                "log partition already created; configure before the first log update".to_string(),
            ));
        }
        self.log_config = config;
        Ok(())
    }

    /// Sets the sequencing coverage (reads per expected strand).
    pub fn set_coverage(&mut self, coverage: usize) {
        assert!(coverage > 0, "coverage must be positive");
        self.coverage = coverage;
    }

    /// Replaces the sequencer (e.g. to inject nanopore-grade noise).
    pub fn set_sequencer(&mut self, sequencer: Sequencer) {
        self.sequencer = sequencer;
    }

    /// The archival pool (inspection/benches).
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// Mutable pool access for custom bench protocols.
    pub fn pool_mut(&mut self) -> &mut Pool {
        &mut self.pool
    }

    /// The digital front-end's view of a block's current logical content
    /// (§5.4: the original plus every applied update), or `None` if the
    /// block was never written through this store. No wetlab work is
    /// performed — this is the oracle a serving layer checks cached reads
    /// against.
    pub fn logical_block(&self, pid: PartitionId, block: u64) -> Option<&Block> {
        self.logical.get(&(pid.0, block))
    }

    /// Iterates the digital front-end's logical contents in
    /// `(partition, block)` order — the snapshot a serving layer seeds its
    /// staleness oracle from when wrapping an already-loaded store.
    pub fn logical_contents(&self) -> impl Iterator<Item = ((PartitionId, u64), &Block)> {
        self.logical
            .iter()
            .map(|(&(p, b), blk)| ((PartitionId(p), b), blk))
    }

    /// Borrow a partition.
    ///
    /// # Errors
    ///
    /// Unknown ids are rejected.
    pub fn partition(&self, pid: PartitionId) -> Result<&Partition, StoreError> {
        self.partitions
            .get(pid.0)
            .ok_or(StoreError::UnknownPartition(pid.0))
    }

    /// Creates a partition, assigning the next compatible primer pair.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoPrimerPairAvailable`] when the primer library is
    /// exhausted (§1: only ~1000–3000 compatible primers exist at length
    /// 20 — the scarcity that motivates this whole design).
    pub fn create_partition(&mut self, config: PartitionConfig) -> Result<PartitionId, StoreError> {
        let pair = self.next_primer_pair()?;
        let mut config = config;
        config.partition_tag = self.partitions.len() as u32;
        self.partitions.push(Partition::new(config, pair));
        Ok(PartitionId(self.partitions.len() - 1))
    }

    fn next_primer_pair(&mut self) -> Result<PrimerPair, StoreError> {
        if self.primers_handed_out + 2 > self.primer_library.len() {
            return Err(StoreError::NoPrimerPairAvailable);
        }
        let fwd = self.primer_library.primer(self.primers_handed_out).clone();
        let rev = self
            .primer_library
            .primer(self.primers_handed_out + 1)
            .clone();
        self.primers_handed_out += 2;
        Ok(PrimerPair::new(fwd, rev))
    }

    /// Writes `data` as consecutive blocks starting at block 0, synthesizes
    /// the strands (Twist vendor model) and adds them to the pool. Returns
    /// the number of blocks written.
    ///
    /// # Errors
    ///
    /// Propagates partition errors (range, double write).
    pub fn write_file(&mut self, pid: PartitionId, data: &[u8]) -> Result<u64, StoreError> {
        self.write_file_at(pid, 0, data)
    }

    /// Writes `data` as consecutive blocks starting at `first_block`.
    ///
    /// # Errors
    ///
    /// Propagates partition errors (range, double write).
    pub fn write_file_at(
        &mut self,
        pid: PartitionId,
        first_block: u64,
        data: &[u8],
    ) -> Result<u64, StoreError> {
        let partition = self
            .partitions
            .get_mut(pid.0)
            .ok_or(StoreError::UnknownPartition(pid.0))?;
        let blocks = data.chunks(BLOCK_SIZE).collect::<Vec<_>>();
        let mut designs = Vec::new();
        for (i, chunk) in blocks.iter().enumerate() {
            let block_id = first_block + i as u64;
            let block = Block::from_bytes(chunk)?;
            designs.extend(partition.encode_block(block_id, &block)?);
            self.logical.insert((pid.0, block_id), block);
        }
        let synthesized = self.twist.synthesize(&designs, &mut self.rng);
        self.pool = self.pool.mixed_with(&synthesized, 1.0, 1.0);
        Ok(blocks.len() as u64)
    }

    /// Updates a block to `new_content`: computes a §6.4 diff patch against
    /// the logical cache, synthesizes it (IDT vendor model, 50000× more
    /// concentrated), and mixes it into the pool at matched per-oligo
    /// concentration (§6.4.2).
    ///
    /// # Errors
    ///
    /// Fails when the block was never written, the change cannot fit one
    /// patch, or the address space is exhausted.
    pub fn update_block(
        &mut self,
        pid: PartitionId,
        block: u64,
        new_content: &[u8],
    ) -> Result<(), StoreError> {
        let old = self
            .logical
            .get(&(pid.0, block))
            .cloned()
            .ok_or(StoreError::BlockNotWritten(block))?;
        let new = Block::from_bytes(new_content)?;
        let patch = UpdatePatch::diff(&old, &new).ok_or_else(|| {
            StoreError::InvalidPatch("change too large for one patch".to_string())
        })?;
        let layout = self.partition(pid)?.config().layout;
        let designs = match layout {
            UpdateLayout::DedicatedLog => self.encode_log_update(pid, block, &patch)?,
            _ => {
                let partition = self
                    .partitions
                    .get_mut(pid.0)
                    .ok_or(StoreError::UnknownPartition(pid.0))?;
                partition.encode_update(block, &patch)?.1
            }
        };
        // Synthesize with the small-batch vendor and mix at matched
        // per-oligo concentration (shared with the compaction rewrite
        // path).
        self.mix_rewrites(&designs);
        self.logical.insert((pid.0, block), new);
        Ok(())
    }

    /// Routes a DedicatedLog-layout update into the shared log partition.
    fn encode_log_update(
        &mut self,
        pid: PartitionId,
        block: u64,
        patch: &UpdatePatch,
    ) -> Result<Vec<dna_sim::Molecule>, StoreError> {
        let log_pid = match self.log_partition {
            Some(p) => p,
            None => {
                let pair = self.next_primer_pair()?;
                let mut cfg = self.log_config;
                cfg.partition_tag = LOG_PARTITION_TAG; // distinguish log strands in tags
                self.partitions.push(Partition::new(cfg, pair));
                let p = self.partitions.len() - 1;
                self.log_partition = Some(p);
                p
            }
        };
        if self.log_head >= self.log_capacity() {
            return Err(StoreError::UpdateSlotsExhausted {
                block,
                layout: UpdateLayout::DedicatedLog,
                chain_len: self.log_head as usize,
                headroom: 0,
            });
        }
        let entry = log_entry_block(pid.0 as u32, block, self.log_seq, patch);
        self.log_seq += 1;
        let leaf = self.log_head;
        self.log_head += 1;
        let log_partition = &mut self.partitions[log_pid];
        let molecules = log_partition.encode_block(leaf, &entry)?;
        self.partitions[pid.0].note_external_update(block);
        Ok(molecules)
    }

    // ----- maintenance / compaction -----------------------------------------

    /// Every partition handle, the shared log partition included (it
    /// reports [`UpdateLayout`]-independent zero update state, so policy
    /// scans skip it naturally).
    pub fn partition_ids(&self) -> Vec<PartitionId> {
        (0..self.partitions.len()).map(PartitionId).collect()
    }

    /// The shared DedicatedLog partition, if any log update was committed.
    pub fn log_partition_id(&self) -> Option<PartitionId> {
        self.log_partition.map(PartitionId)
    }

    /// Entries currently in the shared update log.
    pub fn log_entries(&self) -> u64 {
        self.log_head
    }

    /// Entries the shared log can still accept before
    /// [`StoreError::UpdateSlotsExhausted`].
    pub fn log_headroom(&self) -> u64 {
        self.log_capacity().saturating_sub(self.log_head)
    }

    /// Total entries the log partition can hold (its address space minus
    /// the overflow guard leaf).
    fn log_capacity(&self) -> u64 {
        match self.log_partition {
            Some(p) => self.partitions[p].num_leaves() - 1,
            None => (1u64 << (2 * self.log_config.tree_depth)) - 1,
        }
    }

    /// Predicts how many more updates of `block` can be committed before
    /// [`StoreError::UpdateSlotsExhausted`] — [`Partition::update_headroom`]
    /// for in-partition layouts, remaining shared-log capacity for
    /// [`UpdateLayout::DedicatedLog`]. Callers (notably the serving layer's
    /// maintenance path) compact when this runs low instead of probing with
    /// writes.
    ///
    /// # Errors
    ///
    /// Unknown partitions are rejected.
    pub fn update_headroom(&self, pid: PartitionId, block: u64) -> Result<u64, StoreError> {
        let partition = self.partition(pid)?;
        match partition.config().layout {
            UpdateLayout::DedicatedLog => {
                if partition.writes_of(block) == 0 {
                    return Ok(0);
                }
                Ok(self.log_headroom())
            }
            _ => Ok(partition.update_headroom(block)),
        }
    }

    /// Projects the §5.3 analytical retrieval scope of one block from the
    /// store's current update metadata: how many encoding units a read of
    /// `block` must amplify and sequence right now. Compaction policies
    /// threshold on this; compaction itself collapses it back to 1.
    ///
    /// # Errors
    ///
    /// Unknown partitions are rejected.
    pub fn retrieval_scope_units(&self, pid: PartitionId, block: u64) -> Result<u64, StoreError> {
        let partition = self.partition(pid)?;
        let layout = partition.config().layout;
        let block_updates = u64::from(partition.writes_of(block).saturating_sub(1));
        let partition_updates = match layout {
            UpdateLayout::TwoStacks => partition.stack_update_count(),
            _ => partition.total_updates(),
        };
        Ok(layout.retrieval_scope_units(block_updates, partition_updates, self.log_head))
    }

    /// Compacts one partition: folds every updated block's patch chain into
    /// its current logical image (the §5.4 digital front-end maintains it —
    /// no wetlab read is needed), retires the stale version / overflow /
    /// pointer molecules from the pool, re-synthesizes a fresh base unit at
    /// [`VersionSlot`] 0 per rebased block (IDT vendor, §6.4.2
    /// concentration-matched mixing), and resets the partition's placement
    /// bookkeeping through [`Partition::reclaim_updates`]. Afterwards the
    /// partition has full update headroom again and every rebased block
    /// reads back in a single-unit scope.
    ///
    /// A [`UpdateLayout::DedicatedLog`] partition keeps its patches in the
    /// shared log, whose entries cannot be retired per partition — so
    /// compacting one delegates to [`BlockStore::compact_log`], folding the
    /// whole log.
    ///
    /// # Errors
    ///
    /// Unknown partitions are rejected; a rebased block missing its logical
    /// image (impossible through the store's own write paths) surfaces as
    /// [`StoreError::BlockNotWritten`].
    pub fn compact_partition(&mut self, pid: PartitionId) -> Result<CompactionReport, StoreError> {
        let layout = self.partition(pid)?.config().layout;
        if layout == UpdateLayout::DedicatedLog {
            return self.compact_log();
        }
        let partition = &self.partitions[pid.0];
        let tag = partition.config().partition_tag;
        // Stale units, counted from metadata before the reclaim: every
        // patch, every chain pointer, and the superseded base unit of each
        // rebased block. Re-encode every fresh base unit FIRST — the only
        // fallible step — so an error leaves partition and pool untouched
        // (retiring molecules before knowing all rewrites exist would turn
        // a lookup failure into permanent data loss).
        let mut units_reclaimed = 0u64;
        let mut designs = Vec::new();
        let mut rebased = Vec::new();
        for (block, writes) in partition.updated_blocks() {
            let pointers = match layout {
                UpdateLayout::Interleaved { .. } => partition.chain_of(block).len() as u64,
                _ => 0,
            };
            units_reclaimed += u64::from(writes - 1) + pointers + 1;
            let image = self
                .logical
                .get(&(pid.0, block))
                .ok_or(StoreError::BlockNotWritten(block))?;
            designs.extend(partition.encode_unit(block, VersionSlot(0), image));
            rebased.push((pid, block));
        }
        let reclaimed = self.partitions[pid.0].reclaim_updates();
        if reclaimed.rebased_blocks.is_empty() {
            return Ok(CompactionReport::default());
        }
        let stale: std::collections::BTreeSet<u64> = reclaimed
            .rebased_blocks
            .iter()
            .map(|&(b, _)| b)
            .chain(reclaimed.freed_leaves.iter().copied())
            .collect();
        let species_retired = self
            .pool
            .retire_where(|t| t.partition == tag && stale.contains(&t.unit));
        let synthesis_cost = self.mix_rewrites(&designs);
        Ok(CompactionReport {
            partitions_compacted: 1,
            blocks_rebased: reclaimed.rebased_blocks.len(),
            units_reclaimed,
            species_retired,
            rewrites_synthesized: reclaimed.rebased_blocks.len() as u64,
            synthesis_cost,
            rebased,
        })
    }

    /// Compacts the shared DedicatedLog partition: folds every logged patch
    /// into its target block's logical image across *all* DedicatedLog
    /// partitions, rebases those blocks with fresh base units, retires the
    /// entire log (plus the superseded base units) from the pool, and
    /// resets the log to empty. Reads of any DedicatedLog block afterwards
    /// skip the whole-log round entirely.
    ///
    /// No-op (empty report) when no log exists or it has no entries.
    ///
    /// # Errors
    ///
    /// See [`BlockStore::compact_partition`].
    pub fn compact_log(&mut self) -> Result<CompactionReport, StoreError> {
        let Some(log_pid) = self.log_partition else {
            return Ok(CompactionReport::default());
        };
        if self.log_head == 0 {
            return Ok(CompactionReport::default());
        }
        let log_tag = self.partitions[log_pid].config().partition_tag;
        let mut report = CompactionReport {
            partitions_compacted: 1, // the log itself
            units_reclaimed: self.log_head,
            ..CompactionReport::default()
        };
        // Phase 1 — re-encode every fresh base unit first, the only
        // fallible step, so an error leaves every partition and the pool
        // untouched (no data is destroyed before its replacement exists).
        let mut designs = Vec::new();
        for p in 0..self.partitions.len() {
            if p == log_pid || self.partitions[p].config().layout != UpdateLayout::DedicatedLog {
                continue;
            }
            for (block, _) in self.partitions[p].updated_blocks() {
                let image = self
                    .logical
                    .get(&(p, block))
                    .ok_or(StoreError::BlockNotWritten(block))?;
                designs.extend(self.partitions[p].encode_unit(block, VersionSlot(0), image));
                report.rebased.push((PartitionId(p), block));
            }
        }
        // Phase 2 — infallible from here: fold bookkeeping and retire the
        // superseded molecules.
        for p in 0..self.partitions.len() {
            if p == log_pid || self.partitions[p].config().layout != UpdateLayout::DedicatedLog {
                continue;
            }
            let tag = self.partitions[p].config().partition_tag;
            let reclaimed = self.partitions[p].reclaim_updates();
            if reclaimed.rebased_blocks.is_empty() {
                continue;
            }
            report.partitions_compacted += 1;
            let stale: std::collections::BTreeSet<u64> =
                reclaimed.rebased_blocks.iter().map(|&(b, _)| b).collect();
            report.species_retired += self
                .pool
                .retire_where(|t| t.partition == tag && stale.contains(&t.unit));
            report.units_reclaimed += stale.len() as u64; // superseded bases
            report.blocks_rebased += reclaimed.rebased_blocks.len();
        }
        report.species_retired += self.pool.retire_where(|t| t.partition == log_tag);
        self.partitions[log_pid].reclaim_all();
        self.log_head = 0;
        self.log_seq = 0;
        report.rewrites_synthesized = report.blocks_rebased as u64;
        report.synthesis_cost = self.mix_rewrites(&designs);
        Ok(report)
    }

    /// Synthesizes small-batch designs (IDT vendor) and mixes them into
    /// the pool at matched per-oligo concentration — the §6.4.2 protocol,
    /// shared by the update and compaction-rewrite paths. Returns the
    /// synthesis cost in dollars.
    fn mix_rewrites(&mut self, designs: &[dna_sim::Molecule]) -> f64 {
        if designs.is_empty() {
            return 0.0;
        }
        let rewrite_pool = self.idt.synthesize(designs, &mut self.rng);
        let data_per_oligo =
            self.nanodrop
                .measure_per_oligo(&self.pool, self.pool.distinct().max(1), &mut self.rng);
        let rewrite_per_oligo = self.nanodrop.measure_per_oligo(
            &rewrite_pool,
            rewrite_pool.distinct().max(1),
            &mut self.rng,
        );
        let dilution = if data_per_oligo > 0.0 {
            (data_per_oligo / rewrite_per_oligo).min(1.0)
        } else {
            // Everything in the tube was retired: the rewrites ARE the pool.
            1.0
        };
        self.pool = self.pool.mixed_with(&rewrite_pool, 1.0, dilution);
        self.idt.synthesis_cost(designs.len(), designs[0].seq.len())
    }

    /// Reads one block through the full wetlab path: precise PCR with the
    /// block's elongated primer (multiplexed with chain/region primers as
    /// the layout requires), sequencing, clustering, trace reconstruction,
    /// RS decoding and patch application. Follows overflow pointers with
    /// extra round-trips when present.
    ///
    /// # Errors
    ///
    /// [`StoreError::DecodeFailed`] if any required unit cannot be
    /// recovered.
    pub fn read_block(
        &mut self,
        pid: PartitionId,
        block: u64,
    ) -> Result<BlockReadOutcome, StoreError> {
        let layout = self.partition(pid)?.config().layout;
        let mut stats = ReadProtocolStats {
            pcr_rounds: 0,
            reads_sequenced: 0,
            reads_matched: 0,
            clusters_used: 0,
        };
        // Round 1: the block's leaf (plus the update region for TwoStacks).
        let (mut current, mut patches): (Block, Vec<UpdatePatch>) = match layout {
            UpdateLayout::Interleaved { update_slots } => {
                self.read_interleaved(pid, block, update_slots, &mut stats)?
            }
            UpdateLayout::TwoStacks => self.read_two_stacks(pid, block, &mut stats)?,
            UpdateLayout::DedicatedLog => self.read_with_dedicated_log(pid, block, &mut stats)?,
        };
        let patches_applied = patches.len();
        for patch in patches.drain(..) {
            current = patch.apply(&current)?;
        }
        Ok(BlockReadOutcome {
            block: current,
            patches_applied,
            stats,
        })
    }

    /// Reads a contiguous block range via one multiplexed precise PCR
    /// (§3.1 prefix cover). Updates are applied per block.
    ///
    /// Implemented on top of [`BlockStore::read_blocks_batch`]: the batch
    /// planner recognizes the contiguous run and covers it with weighted
    /// range prefixes in a single multiplex round, then decodes every block
    /// in parallel.
    ///
    /// # Errors
    ///
    /// Fails if any block in the range cannot be decoded.
    pub fn read_range(
        &mut self,
        pid: PartitionId,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<Block>, StoreError> {
        let requests: Vec<(PartitionId, u64)> = (lo..=hi).map(|b| (pid, b)).collect();
        let batch = self.read_blocks_batch(&requests)?;
        batch
            .outcomes
            .into_iter()
            .map(|r| r.map(|o| o.block))
            .collect()
    }

    // ----- batched retrieval ------------------------------------------------

    /// Reads many blocks — across any number of partitions — in as few PCR
    /// + sequencing round-trips as primer chemistry allows.
    ///
    /// The [`BatchPlanner`] groups the touched partitions into multiplex
    /// rounds subject to cross-dimer/Tm compatibility
    /// ([`dna_primers::MultiplexCompat`]); each round runs one
    /// [`dna_sim::MultiplexPcrReaction`] with per-pair primer budgets, one
    /// sequencing pass, and a parallel software demultiplex + decode
    /// ([`dna_pipeline::decode_jobs_parallel`]). Contiguous runs of
    /// requested blocks are covered by §3.1 prefix primers; committed
    /// overflow-chain leaves, the TwoStacks update region, and the shared
    /// DedicatedLog partition ride in the same tube, so every block's
    /// updates arrive with it.
    ///
    /// Per-block failures are reported in
    /// [`BatchReadOutcome::outcomes`] without failing the batch.
    ///
    /// # Errors
    ///
    /// Fails as a whole only for requests naming an unknown partition.
    pub fn read_blocks_batch(
        &mut self,
        requests: &[(PartitionId, u64)],
    ) -> Result<BatchReadOutcome, StoreError> {
        self.read_blocks_batch_planned(requests, &BatchPlanner::paper_default())
    }

    /// As [`BlockStore::read_blocks_batch`], with an explicit planner
    /// (custom compatibility rules or per-round pair caps).
    ///
    /// # Errors
    ///
    /// Fails as a whole only for requests naming an unknown partition.
    pub fn read_blocks_batch_planned(
        &mut self,
        requests: &[(PartitionId, u64)],
        planner: &BatchPlanner,
    ) -> Result<BatchReadOutcome, StoreError> {
        let (mut outcomes, by_partition) = self.group_batch(requests)?;
        let plan = planner.plan(&self.batch_plan_items(&by_partition));
        let mut stats = BatchStats {
            rounds: plan.num_rounds(),
            ..BatchStats::default()
        };
        let mut ctx = BatchDecodeCtx::default();
        for round in &plan.rounds {
            self.run_batch_round(
                &round.items,
                &by_partition,
                &mut ctx,
                &mut outcomes,
                &mut stats,
            );
        }
        stats.wasted_reads = stats.reads_sequenced.saturating_sub(stats.reads_matched);
        Ok(BatchReadOutcome {
            outcomes: outcomes
                .into_iter()
                .map(|o| o.expect("every request resolved"))
                .collect(),
            stats,
        })
    }

    /// Plans — without executing — the multiplex rounds a batch of
    /// requests would take under `planner`. A serving layer uses this to
    /// predict wetlab cost (e.g. rounds per coalesced batch) before
    /// committing a tube.
    ///
    /// # Errors
    ///
    /// Fails for requests naming an unknown partition (out-of-range block
    /// ids are simply absent from the plan, matching
    /// [`BlockStore::read_blocks_batch`]'s per-request error reporting).
    pub fn plan_batch(
        &self,
        requests: &[(PartitionId, u64)],
        planner: &BatchPlanner,
    ) -> Result<BatchPlan, StoreError> {
        let (_, by_partition) = self.group_batch(requests)?;
        Ok(planner.plan(&self.batch_plan_items(&by_partition)))
    }

    /// Groups in-range requests by partition; out-of-range requests get
    /// their error outcome immediately.
    #[allow(clippy::type_complexity)]
    fn group_batch(
        &self,
        requests: &[(PartitionId, u64)],
    ) -> Result<
        (
            Vec<Option<Result<BlockReadOutcome, StoreError>>>,
            BTreeMap<usize, Vec<(usize, u64)>>,
        ),
        StoreError,
    > {
        let mut outcomes: Vec<Option<Result<BlockReadOutcome, StoreError>>> =
            vec![None; requests.len()];
        let mut by_partition: BTreeMap<usize, Vec<(usize, u64)>> = BTreeMap::new();
        for (i, &(pid, block)) in requests.iter().enumerate() {
            let partition = self.partition(pid)?;
            if block >= partition.num_leaves() {
                outcomes[i] = Some(Err(StoreError::BlockOutOfRange {
                    block,
                    capacity: partition.num_leaves(),
                }));
            } else {
                by_partition.entry(pid.0).or_default().push((i, block));
            }
        }
        Ok((outcomes, by_partition))
    }

    /// One [`PlanItem`] per touched partition (a DedicatedLog partition
    /// drags the shared log pair into its item).
    fn batch_plan_items(&self, by_partition: &BTreeMap<usize, Vec<(usize, u64)>>) -> Vec<PlanItem> {
        by_partition
            .keys()
            .map(|&p| {
                let mut pairs = vec![self.partitions[p].primers().clone()];
                if self.partitions[p].config().layout == UpdateLayout::DedicatedLog {
                    if let Some(log) = self.log_partition {
                        pairs.push(self.partitions[log].primers().clone());
                    }
                }
                PlanItem { id: p, pairs }
            })
            .collect()
    }

    /// Runs one multiplex round: amplify every target of `round_partitions`
    /// in a single tube, sequence once, decode all *new* leaves in parallel
    /// (leaves already decoded by an earlier round of this batch are
    /// reused), and assemble per-request outcomes.
    fn run_batch_round(
        &mut self,
        round_partitions: &[usize],
        by_partition: &BTreeMap<usize, Vec<(usize, u64)>>,
        ctx: &mut BatchDecodeCtx,
        outcomes: &mut [Option<Result<BlockReadOutcome, StoreError>>],
        stats: &mut BatchStats,
    ) {
        let budget = self.retrieval_budget();
        // (weighted forward scope, reverse primer, encoding units covered)
        // per channel; budgets are assigned after the total unit count is
        // known so per-unit amplification stays even across channels.
        let mut pending: Vec<ChannelSpec> = Vec::new();
        let mut expected_units = 0usize;
        let mut jobs: Vec<DecodeJob> = Vec::new();
        let BatchDecodeCtx {
            job_index,
            decoded,
            log_decoded,
        } = ctx;
        // New jobs append after everything decoded by earlier rounds.
        let base = decoded.len();
        let mut log_in_round = false;

        for &p in round_partitions {
            let partition = &self.partitions[p];
            let rev = partition.primers().reverse().clone();
            let mut blocks: Vec<u64> = by_partition[&p].iter().map(|&(_, b)| b).collect();
            blocks.sort_unstable();
            blocks.dedup();
            // Cover contiguous runs with §3.1 prefix primers, weighted by
            // covered leaf count so the whole run amplifies evenly.
            let mut scope: Vec<(DnaSeq, f64)> = Vec::new();
            let mut run_start = blocks[0];
            let mut prev = blocks[0];
            for &b in &blocks[1..] {
                if b != prev + 1 {
                    scope.extend(partition.range_prefixes_weighted(run_start, prev));
                    run_start = b;
                }
                prev = b;
            }
            scope.extend(partition.range_prefixes_weighted(run_start, prev));
            // Every decode is pinned to the version slots the metadata
            // says are live at that leaf (see
            // [`Partition::live_version_slots`]): noise claiming a dead
            // version base never decodes into a phantom patch, and a live
            // slot that fails to decode is a reportable hole.
            let mut add_job = |jobs: &mut Vec<DecodeJob>, leaf: u64| {
                job_index.entry((p, leaf)).or_insert_with(|| {
                    jobs.push(DecodeJob {
                        prefix: partition.elongated_primer(leaf),
                        reverse: rev.clone(),
                        config: partition
                            .decode_config_versions(leaf, &partition.live_version_slots(leaf)),
                    });
                    base + jobs.len() - 1
                });
            };
            for &b in &blocks {
                add_job(&mut jobs, b);
            }
            // Update scope: committed chain leaves / the TwoStacks update
            // region come along in the same tube (DedicatedLog patches live
            // in the shared log partition, handled once per round below).
            // Sequencing depth is provisioned per encoding unit, counted
            // from the update metadata rather than a flat per-block
            // constant, so heavily-updated blocks keep their per-unit
            // coverage.
            let channel_units = match partition.config().layout {
                UpdateLayout::Interleaved { .. } => {
                    // Units per block: the original plus every patch
                    // (`writes_of`) plus one pointer unit per chain hop,
                    // floored at the 2 units/block the range path budgets.
                    let units = blocks
                        .iter()
                        .map(|&b| {
                            (partition.writes_of(b) as usize + partition.chain_of(b).len()).max(2)
                        })
                        .sum::<usize>();
                    let mut chain: Vec<u64> = blocks
                        .iter()
                        .flat_map(|&b| partition.chain_of(b).iter().copied())
                        .collect();
                    chain.sort_unstable();
                    chain.dedup();
                    for &leaf in &chain {
                        scope.push((partition.elongated_primer(leaf), 1.0));
                        add_job(&mut jobs, leaf);
                    }
                    units
                }
                UpdateLayout::TwoStacks => {
                    let mut units = blocks.len() * 2;
                    let stack = partition.stack_update_count();
                    if stack > 0 {
                        let lo = partition.num_leaves() - stack;
                        let hi = partition.num_leaves() - 1;
                        scope.extend(partition.range_prefixes_weighted(lo, hi));
                        let mut leaves: Vec<u64> = blocks
                            .iter()
                            .flat_map(|&b| partition.chain_of(b).iter().copied())
                            .collect();
                        leaves.sort_unstable();
                        leaves.dedup();
                        for &leaf in &leaves {
                            add_job(&mut jobs, leaf);
                        }
                        units += stack as usize;
                    }
                    units
                }
                UpdateLayout::DedicatedLog => {
                    log_in_round = true;
                    blocks.len() * 2
                }
            };
            expected_units += channel_units;
            pending.push(ChannelSpec {
                scope,
                reverse: rev,
                units: channel_units,
            });
        }
        // The shared log rides in at most one tube per batch call: later
        // rounds reuse the first round's decoded entries instead of
        // re-amplifying and re-decoding the whole log. A log that
        // compaction folded back to empty never enters the tube at all.
        if log_in_round && !*log_decoded && self.log_head > 0 {
            if let Some(log_pid) = self.log_partition {
                let log = &self.partitions[log_pid];
                let log_fwd = log.scope_primer();
                let log_rev = log.primers().reverse().clone();
                for leaf in 0..self.log_head {
                    job_index.entry((log_pid, leaf)).or_insert_with(|| {
                        jobs.push(DecodeJob {
                            prefix: log.elongated_primer(leaf),
                            reverse: log_rev.clone(),
                            config: log.decode_config_versions(leaf, &[VersionSlot(0)]),
                        });
                        base + jobs.len() - 1
                    });
                }
                let units = self.log_head as usize + 1;
                expected_units += units;
                pending.push(ChannelSpec {
                    scope: vec![(log_fwd, units as f64)],
                    reverse: log_rev,
                    units,
                });
                *log_decoded = true;
            }
        }

        // Each channel's primer budget is proportional to its share of the
        // units in scope (scaled so a single-channel round gets exactly the
        // sequential path's budget): the sequencing pass samples the tube
        // by abundance, so equal budgets would starve large-scope channels
        // of per-unit read depth.
        let total_units = expected_units.max(1) as f64;
        let channels: Vec<PrimerChannel> = pending
            .iter()
            .map(|spec| {
                let channel_budget =
                    budget * (spec.units as f64) * (pending.len() as f64) / total_units;
                PrimerChannel {
                    forward_primers: weighted_forward_primers(&spec.scope, channel_budget),
                    reverse_primer: PcrPrimer::with_budget(spec.reverse.clone(), channel_budget),
                }
            })
            .collect();

        stats.primer_pairs += channels.len();
        let rxn = MultiplexPcrReaction {
            channels,
            protocol: PcrProtocol::paper_block_access(),
        };
        let amplified = rxn.run(&self.pool);
        let n_reads = self.reads_to_sequence(expected_units);
        let reads = self
            .sequencer
            .sequence(&amplified.pool, n_reads, &mut self.rng);
        stats.reads_sequenced += reads.len();

        decode_jobs_parallel_into(&reads, &jobs, unit_checksum_ok, 0, decoded);
        stats.decode_jobs += jobs.len();
        for outcome in &decoded[base..] {
            stats.reads_matched += outcome.reads_matched;
        }

        for &p in round_partitions {
            for &(req_idx, block) in &by_partition[&p] {
                outcomes[req_idx] = Some(self.assemble_batch_outcome(
                    p,
                    block,
                    job_index,
                    decoded,
                    reads.len(),
                    base,
                ));
            }
        }
    }

    /// Reconstructs one requested block from a round's decoded leaves,
    /// mirroring the layout-specific single-read paths. `round_start` is
    /// the index of this round's first decode outcome: per-request read
    /// statistics count only this round's wetlab work, so leaves reused
    /// from an earlier round (the shared log) contribute their patches but
    /// not their matched-read counts — `reads_matched` stays consistent
    /// with `reads_sequenced`.
    #[allow(clippy::too_many_arguments)]
    fn assemble_batch_outcome(
        &self,
        p: usize,
        block: u64,
        job_index: &BTreeMap<(usize, u64), usize>,
        decoded: &[BlockDecodeOutcome],
        round_reads: usize,
        round_start: usize,
    ) -> Result<BlockReadOutcome, StoreError> {
        let partition = &self.partitions[p];
        let origin = &decoded[job_index[&(p, block)]];
        let mut stats = ReadProtocolStats {
            pcr_rounds: 1,
            reads_sequenced: round_reads,
            reads_matched: origin.reads_matched,
            clusters_used: origin.clusters_used,
        };
        let (original, patches) = match partition.config().layout {
            UpdateLayout::Interleaved { update_slots } => {
                let mut original = None;
                let mut patches = Vec::new();
                let mut leaves = vec![block];
                leaves.extend_from_slice(partition.chain_of(block));
                for (hop, &leaf) in leaves.iter().enumerate() {
                    let outcome = &decoded[job_index[&(p, leaf)]];
                    if hop > 0 {
                        stats.reads_matched += outcome.reads_matched;
                    }
                    // Every slot the metadata says is live here must have
                    // decoded — a missing one is a hole in the patch chain.
                    require_live_versions(
                        outcome,
                        &partition.live_version_slots(leaf),
                        block,
                        leaf,
                    )?;
                    for (base, v) in &outcome.versions {
                        let slot = VersionSlot::from_base(*base);
                        let content = Block::from_unit_bytes(&v.unit_bytes).map_err(|_| {
                            StoreError::DecodeFailed {
                                block,
                                reason: format!("unit checksum at leaf {leaf} slot {}", slot.0),
                            }
                        })?;
                        if hop == 0 && slot.0 == 0 {
                            original = Some(content);
                        } else if slot.0 == update_slots {
                            // Pointer slot — the chain is already known from
                            // metadata, nothing to follow.
                        } else {
                            patches.push(UpdatePatch::from_block(&content)?);
                        }
                    }
                }
                let original = original.ok_or(StoreError::DecodeFailed {
                    block,
                    reason: "original version missing".to_string(),
                })?;
                (original, patches)
            }
            UpdateLayout::TwoStacks => {
                let (original, _) = interpret_interleaved(origin, block)?;
                let mut patches = Vec::new();
                for &leaf in partition.chain_of(block) {
                    let outcome = &decoded[job_index[&(p, leaf)]];
                    stats.reads_matched += outcome.reads_matched;
                    let v = outcome
                        .versions
                        .get(&Base::A)
                        .ok_or(StoreError::DecodeFailed {
                            block,
                            reason: format!("update leaf {leaf} unrecovered"),
                        })?;
                    let content = Block::from_unit_bytes(&v.unit_bytes).map_err(|_| {
                        StoreError::DecodeFailed {
                            block,
                            reason: format!("update unit at leaf {leaf}"),
                        }
                    })?;
                    patches.push(UpdatePatch::from_block(&content)?);
                }
                (original, patches)
            }
            UpdateLayout::DedicatedLog => {
                let (original, _) = interpret_interleaved(origin, block)?;
                let mut found: Vec<(u32, UpdatePatch)> = Vec::new();
                if let Some(log_pid) = self.log_partition {
                    for leaf in 0..self.log_head {
                        let Some(&job) = job_index.get(&(log_pid, leaf)) else {
                            continue;
                        };
                        let outcome = &decoded[job];
                        if job >= round_start {
                            stats.reads_matched += outcome.reads_matched;
                        }
                        // An unrecovered log entry could hold a patch for
                        // this very block: failing is the only answer that
                        // never serves stale bytes.
                        let v = outcome
                            .versions
                            .get(&Base::A)
                            .ok_or(StoreError::DecodeFailed {
                                block,
                                reason: format!("log entry {leaf} unrecovered"),
                            })?;
                        if let Ok(content) = Block::from_unit_bytes(&v.unit_bytes) {
                            found.extend(log_patch_for(&content, p as u32, block));
                        }
                    }
                }
                found.sort_by_key(|&(seq, _)| seq);
                (
                    original,
                    found.into_iter().map(|(_, patch)| patch).collect(),
                )
            }
        };
        let patches_applied = patches.len();
        let mut current = original;
        for patch in patches {
            current = patch.apply(&current)?;
        }
        Ok(BlockReadOutcome {
            block: current,
            patches_applied,
            stats,
        })
    }

    // ----- layout-specific read paths ---------------------------------------

    fn read_interleaved(
        &mut self,
        pid: PartitionId,
        block: u64,
        update_slots: u8,
        stats: &mut ReadProtocolStats,
    ) -> Result<(Block, Vec<UpdatePatch>), StoreError> {
        let mut patches = Vec::new();
        let mut original: Option<Block> = None;
        let mut leaf = block;
        // Follow the pointer chain; the common case is a single round-trip.
        for _hop in 0..64 {
            let partition = self.partition(pid)?;
            let prefix = partition.elongated_primer(leaf);
            let rev = partition.primers().reverse().clone();
            let live = partition.live_version_slots(leaf);
            let cfg = partition.decode_config_versions(leaf, &live);
            let reads = self.run_retrieval(&[(prefix.clone(), 1.0)], &rev, 4);
            stats.pcr_rounds += 1;
            stats.reads_sequenced += reads.len();
            let outcome = decode_block_validated(&reads, &prefix, &rev, &cfg, unit_checksum_ok);
            stats.reads_matched += outcome.reads_matched;
            stats.clusters_used = outcome.clusters_used;
            // Every metadata-live slot must have decoded; a missing one is
            // a hole in the patch chain and returning the block without it
            // would serve stale bytes.
            require_live_versions(&outcome, &live, block, leaf)?;
            let mut next_leaf = None;
            for (base, v) in &outcome.versions {
                let slot = VersionSlot::from_base(*base);
                let content = Block::from_unit_bytes(&v.unit_bytes).map_err(|_| {
                    StoreError::DecodeFailed {
                        block,
                        reason: format!("unit checksum at leaf {leaf} slot {}", slot.0),
                    }
                })?;
                if leaf == block && slot.0 == 0 {
                    original = Some(content);
                } else if slot.0 == update_slots {
                    // pointer slot
                    match parse_pointer_block(&content) {
                        Some(target) => next_leaf = Some(target),
                        None => {
                            return Err(StoreError::DecodeFailed {
                                block,
                                reason: format!("malformed pointer at leaf {leaf}"),
                            })
                        }
                    }
                } else {
                    patches.push((leaf, slot.0, UpdatePatch::from_block(&content)?));
                }
            }
            if outcome.versions.is_empty() && leaf == block {
                return Err(StoreError::DecodeFailed {
                    block,
                    reason: "no versions recovered".to_string(),
                });
            }
            match next_leaf {
                Some(target) => leaf = target,
                None => break,
            }
        }
        let original = original.ok_or(StoreError::DecodeFailed {
            block,
            reason: "original version missing".to_string(),
        })?;
        // Patches are already in (hop, slot) order: chain hops were visited
        // chronologically and slots sort by version base.
        let ordered = patches.into_iter().map(|(_, _, p)| p).collect();
        Ok((original, ordered))
    }

    fn read_two_stacks(
        &mut self,
        pid: PartitionId,
        block: u64,
        stats: &mut ReadProtocolStats,
    ) -> Result<(Block, Vec<UpdatePatch>), StoreError> {
        let partition = self.partition(pid)?;
        let rev = partition.primers().reverse().clone();
        let update_leaves: Vec<u64> = partition.chain_of(block).to_vec();
        // Fig. 7 cost: the block plus the ENTIRE used update region must be
        // amplified, with primer concentrations weighted by covered leaves.
        let stack_updates = partition.stack_update_count();
        let mut scope: Vec<(DnaSeq, f64)> = vec![(partition.elongated_primer(block), 1.0)];
        if stack_updates > 0 {
            let lo = partition.num_leaves() - stack_updates;
            let hi = partition.num_leaves() - 1;
            scope.extend(partition.range_prefixes_weighted(lo, hi));
        }
        let expected_units = 1 + stack_updates as usize;
        let reads = self.run_retrieval(&scope, &rev, expected_units);
        stats.pcr_rounds += 1;
        stats.reads_sequenced += reads.len();
        // Decode the block itself. TwoStacks data leaves only ever hold the
        // base version, so the decode is pinned to it — noise claiming a
        // retired or foreign version base can never become a phantom patch.
        let partition = self.partition(pid)?;
        let prefix = partition.elongated_primer(block);
        let cfg = partition.decode_config_versions(block, &[VersionSlot(0)]);
        let outcome = decode_block_validated(&reads, &prefix, &rev, &cfg, unit_checksum_ok);
        stats.reads_matched += outcome.reads_matched;
        let (original, _) = interpret_interleaved(&outcome, block)?;
        // Decode this block's update leaves (known from metadata; their
        // content is self-ordering via version slots 0 at distinct leaves).
        let mut patches = Vec::new();
        for &leaf in &update_leaves {
            let partition = self.partition(pid)?;
            let prefix = partition.elongated_primer(leaf);
            let cfg = partition.decode_config_versions(leaf, &[VersionSlot(0)]);
            let o = decode_block_validated(&reads, &prefix, &rev, &cfg, unit_checksum_ok);
            stats.reads_matched += o.reads_matched;
            if let Some(v) = o.versions.get(&Base::A) {
                let content = Block::from_unit_bytes(&v.unit_bytes).map_err(|_| {
                    StoreError::DecodeFailed {
                        block,
                        reason: format!("update unit at leaf {leaf}"),
                    }
                })?;
                patches.push(UpdatePatch::from_block(&content)?);
            } else {
                return Err(StoreError::DecodeFailed {
                    block,
                    reason: format!("update leaf {leaf} unrecovered"),
                });
            }
        }
        Ok((original, patches))
    }

    fn read_with_dedicated_log(
        &mut self,
        pid: PartitionId,
        block: u64,
        stats: &mut ReadProtocolStats,
    ) -> Result<(Block, Vec<UpdatePatch>), StoreError> {
        // Round 1: the data block (base version only under this layout).
        let partition = self.partition(pid)?;
        let prefix = partition.elongated_primer(block);
        let rev = partition.primers().reverse().clone();
        let cfg = partition.decode_config_versions(block, &[VersionSlot(0)]);
        let reads = self.run_retrieval(&[(prefix.clone(), 1.0)], &rev, 2);
        stats.pcr_rounds += 1;
        stats.reads_sequenced += reads.len();
        let outcome = decode_block_validated(&reads, &prefix, &rev, &cfg, unit_checksum_ok);
        stats.reads_matched += outcome.reads_matched;
        let (original, _) = interpret_interleaved(&outcome, block)?;
        // Round 2: the ENTIRE shared log (the §5.3 Fig. 6 cost) — skipped
        // outright when compaction has folded the log back to empty.
        let mut patches = Vec::new();
        if let (Some(log_pid), true) = (self.log_partition, self.log_head > 0) {
            let log = &self.partitions[log_pid];
            let log_fwd = log.scope_primer();
            let log_rev = log.primers().reverse().clone();
            let entries = self.log_head;
            let reads =
                self.run_retrieval(&[(log_fwd.clone(), 1.0)], &log_rev, entries as usize + 1);
            stats.pcr_rounds += 1;
            stats.reads_sequenced += reads.len();
            let mut found: Vec<(u32, UpdatePatch)> = Vec::new();
            for leaf in 0..entries {
                let log = &self.partitions[log_pid];
                let prefix = log.elongated_primer(leaf);
                let cfg = log.decode_config_versions(leaf, &[VersionSlot(0)]);
                let o = decode_block_validated(&reads, &prefix, &log_rev, &cfg, unit_checksum_ok);
                stats.reads_matched += o.reads_matched;
                // As in the batch path: an unrecovered entry might target
                // this block, so the read must fail rather than skip it.
                let v = o.versions.get(&Base::A).ok_or(StoreError::DecodeFailed {
                    block,
                    reason: format!("log entry {leaf} unrecovered"),
                })?;
                if let Ok(content) = Block::from_unit_bytes(&v.unit_bytes) {
                    found.extend(log_patch_for(&content, pid.0 as u32, block));
                }
            }
            found.sort_by_key(|&(seq, _)| seq);
            patches.extend(found.into_iter().map(|(_, p)| p));
        }
        Ok((original, patches))
    }

    /// Primer-molecule budget for one retrieval reaction: 20× the tube's
    /// template count, so cycles end in template competition rather than
    /// primer exhaustion. Shared by the sequential and batched paths.
    fn retrieval_budget(&self) -> f64 {
        self.pool.total_copies() * 20.0
    }

    /// Reads to sequence when `expected_units` encoding units are in scope
    /// (15 strands per unit at the configured coverage). Shared by the
    /// sequential and batched paths.
    fn reads_to_sequence(&self, expected_units: usize) -> usize {
        expected_units.max(1) * 15 * self.coverage
    }

    /// Runs one precise PCR (multiplexed over weighted `primers`) on the
    /// pool and sequences the product. Primer budgets are proportional to
    /// each primer's weight (the number of leaves it covers), so every leaf
    /// in scope amplifies evenly (§3.2).
    fn run_retrieval(
        &mut self,
        primers: &[(DnaSeq, f64)],
        rev: &DnaSeq,
        expected_units: usize,
    ) -> Vec<Read> {
        let budget = self.retrieval_budget();
        let rxn = PcrReaction {
            forward_primers: weighted_forward_primers(primers, budget),
            reverse_primer: PcrPrimer::with_budget(rev.clone(), budget),
            protocol: PcrProtocol::paper_block_access(),
        };
        let out = rxn.run(&self.pool);
        let n_reads = self.reads_to_sequence(expected_units);
        self.sequencer.sequence(&out.pool, n_reads, &mut self.rng)
    }
}

/// Splits one reaction's forward-primer budget across a weighted scope so
/// every covered leaf amplifies evenly (§3.2's concentration invariant).
fn weighted_forward_primers(scope: &[(DnaSeq, f64)], budget: f64) -> Vec<PcrPrimer> {
    let total_weight: f64 = scope.iter().map(|(_, w)| w.max(1e-9)).sum();
    scope
        .iter()
        .map(|(p, w)| PcrPrimer::with_budget(p.clone(), budget * w.max(1e-9) / total_weight))
        .collect()
}

/// Parses a decoded log-entry unit, returning `(seq, patch)` when the entry
/// targets `(pid, block)`.
fn log_patch_for(content: &Block, pid: u32, block: u64) -> Option<(u32, UpdatePatch)> {
    let (epid, eblock, seq, patch) = parse_log_entry(content)?;
    (epid == pid && eblock == block).then_some((seq, patch))
}

/// Fails a read when any version slot the partition metadata says is live
/// at `leaf` was not decoded — whether it was observed-but-unrecoverable
/// (also reported in `failed_versions`) or never observed at all (e.g.
/// coverage starvation sampled zero surviving reads for that slot).
/// Serving the block without it would silently return stale bytes.
fn require_live_versions(
    outcome: &BlockDecodeOutcome,
    live: &[VersionSlot],
    block: u64,
    leaf: u64,
) -> Result<(), StoreError> {
    for slot in live {
        if !outcome.versions.contains_key(&slot.base()) {
            return Err(StoreError::DecodeFailed {
                block,
                reason: format!("version slot {} at leaf {leaf} unrecovered", slot.0),
            });
        }
    }
    Ok(())
}

/// Extracts the original block and its in-leaf patches from a decode
/// outcome (Interleaved semantics: slot 0 = original, others = patches).
fn interpret_interleaved(
    outcome: &BlockDecodeOutcome,
    block: u64,
) -> Result<(Block, Vec<UpdatePatch>), StoreError> {
    let original = outcome
        .versions
        .get(&Base::A)
        .ok_or(StoreError::DecodeFailed {
            block,
            reason: "original version missing".to_string(),
        })
        .and_then(|v| {
            Block::from_unit_bytes(&v.unit_bytes).map_err(|_| StoreError::DecodeFailed {
                block,
                reason: "unit checksum".to_string(),
            })
        })?;
    let mut patches = Vec::new();
    for (base, v) in &outcome.versions {
        if *base == Base::A {
            continue;
        }
        let content =
            Block::from_unit_bytes(&v.unit_bytes).map_err(|_| StoreError::DecodeFailed {
                block,
                reason: "update unit checksum".to_string(),
            })?;
        if parse_pointer_block(&content).is_none() {
            patches.push(UpdatePatch::from_block(&content)?);
        }
    }
    Ok((original, patches))
}

/// Serializes a DedicatedLog entry: marker, partition, block, sequence
/// number, then the patch wire format.
fn log_entry_block(pid: u32, block: u64, seq: u32, patch: &UpdatePatch) -> Block {
    let mut bytes = vec![0xFEu8];
    bytes.extend_from_slice(&pid.to_le_bytes());
    bytes.extend_from_slice(&block.to_le_bytes());
    bytes.extend_from_slice(&seq.to_le_bytes());
    let wire = patch.to_block();
    bytes.push(wire.data[0]);
    bytes.push(wire.data[1]);
    bytes.push(wire.data[2]);
    bytes.push(wire.data[3]);
    bytes.extend_from_slice(&patch.ins_bytes);
    Block::from_bytes(&bytes).expect("log entry fits")
}

/// Parses a DedicatedLog entry.
fn parse_log_entry(block: &Block) -> Option<(u32, u64, u32, UpdatePatch)> {
    let d = &block.data;
    if d[0] != 0xFE {
        return None;
    }
    let pid = u32::from_le_bytes(d[1..5].try_into().ok()?);
    let target = u64::from_le_bytes(d[5..13].try_into().ok()?);
    let seq = u32::from_le_bytes(d[13..17].try_into().ok()?);
    let ins_len = usize::from(d[20]);
    if 21 + ins_len > d.len() {
        return None;
    }
    let patch = UpdatePatch::new(d[17], d[18], d[19], d[21..21 + ins_len].to_vec()).ok()?;
    Some((pid, target, seq, patch))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trip() {
        let mut store = BlockStore::new(1);
        let pid = store
            .create_partition(PartitionConfig::paper_default(11))
            .unwrap();
        let data = crate::workload::deterministic_text(3 * BLOCK_SIZE, 5);
        assert_eq!(store.write_file(pid, &data).unwrap(), 3);
        for b in 0..3u64 {
            let out = store.read_block(pid, b).unwrap();
            assert_eq!(
                out.block.data,
                &data[b as usize * BLOCK_SIZE..(b as usize + 1) * BLOCK_SIZE],
                "block {b}"
            );
            assert_eq!(out.patches_applied, 0);
            assert_eq!(out.stats.pcr_rounds, 1);
        }
    }

    #[test]
    fn update_then_read_applies_patch() {
        let mut store = BlockStore::new(2);
        let pid = store
            .create_partition(PartitionConfig::paper_default(12))
            .unwrap();
        let mut data = crate::workload::deterministic_text(2 * BLOCK_SIZE, 6);
        store.write_file(pid, &data).unwrap();
        // Edit a few bytes of block 1.
        data[BLOCK_SIZE + 10..BLOCK_SIZE + 15].copy_from_slice(b"EDIT!");
        store
            .update_block(pid, 1, &data[BLOCK_SIZE..2 * BLOCK_SIZE])
            .unwrap();
        let out = store.read_block(pid, 1).unwrap();
        assert_eq!(out.block.data, &data[BLOCK_SIZE..2 * BLOCK_SIZE]);
        assert_eq!(out.patches_applied, 1);
        // Unupdated block unaffected.
        let out0 = store.read_block(pid, 0).unwrap();
        assert_eq!(out0.block.data, &data[..BLOCK_SIZE]);
        assert_eq!(out0.patches_applied, 0);
    }

    #[test]
    fn multiple_updates_apply_in_order() {
        let mut store = BlockStore::new(3);
        let pid = store
            .create_partition(PartitionConfig::paper_default(13))
            .unwrap();
        let data = crate::workload::deterministic_text(BLOCK_SIZE, 7);
        store.write_file(pid, &data).unwrap();
        let mut current = data.clone();
        current[0..3].copy_from_slice(b"one");
        store.update_block(pid, 0, &current).unwrap();
        current[4..7].copy_from_slice(b"two");
        store.update_block(pid, 0, &current).unwrap();
        let out = store.read_block(pid, 0).unwrap();
        assert_eq!(out.block.data, current);
        assert_eq!(out.patches_applied, 2);
        assert_eq!(out.stats.pcr_rounds, 1, "direct slots need one round-trip");
    }

    #[test]
    fn overflow_chain_follows_pointers() {
        let mut store = BlockStore::new(4);
        let pid = store
            .create_partition(PartitionConfig::paper_default(14))
            .unwrap();
        let data = crate::workload::deterministic_text(BLOCK_SIZE, 8);
        store.write_file(pid, &data).unwrap();
        let mut current = data.clone();
        for i in 0..4u8 {
            current[i as usize] = b'A' + i;
            store.update_block(pid, 0, &current).unwrap();
        }
        let out = store.read_block(pid, 0).unwrap();
        assert_eq!(out.block.data, current);
        assert_eq!(out.patches_applied, 4);
        assert!(
            out.stats.pcr_rounds >= 2,
            "chain requires a second round-trip"
        );
    }

    #[test]
    fn read_range_returns_consecutive_blocks() {
        let mut store = BlockStore::new(5);
        let pid = store
            .create_partition(PartitionConfig::paper_default(15))
            .unwrap();
        let data = crate::workload::deterministic_text(5 * BLOCK_SIZE, 9);
        store.write_file(pid, &data).unwrap();
        let blocks = store.read_range(pid, 1, 3).unwrap();
        assert_eq!(blocks.len(), 3);
        for (i, b) in blocks.iter().enumerate() {
            let off = (i + 1) * BLOCK_SIZE;
            assert_eq!(b.data, &data[off..off + BLOCK_SIZE]);
        }
    }

    #[test]
    fn unknown_partition_and_block_errors() {
        let mut store = BlockStore::new(6);
        assert!(matches!(
            store.read_block(PartitionId(0), 0),
            Err(StoreError::UnknownPartition(0))
        ));
        let pid = store
            .create_partition(PartitionConfig::paper_default(16))
            .unwrap();
        assert!(matches!(
            store.update_block(pid, 0, &[0u8; 10]),
            Err(StoreError::BlockNotWritten(0))
        ));
    }

    #[test]
    fn batch_read_uses_one_round_for_one_partition() {
        // The acceptance bar: 8 blocks from one partition must cost
        // strictly fewer PCR rounds than 8 sequential reads, with
        // byte-identical contents.
        let mut store = BlockStore::new(7);
        let pid = store
            .create_partition(PartitionConfig::paper_default(17))
            .unwrap();
        let data = crate::workload::deterministic_text(8 * BLOCK_SIZE, 11);
        store.write_file(pid, &data).unwrap();
        let sequential: Vec<Block> = (0..8u64)
            .map(|b| store.read_block(pid, b).unwrap().block)
            .collect();
        let sequential_rounds: usize = 8; // one per read_block call
        let requests: Vec<(PartitionId, u64)> = (0..8u64).map(|b| (pid, b)).collect();
        let batch = store.read_blocks_batch(&requests).unwrap();
        assert!(
            batch.stats.rounds < sequential_rounds,
            "batch used {} rounds",
            batch.stats.rounds
        );
        assert_eq!(batch.stats.rounds, 1);
        assert_eq!(batch.stats.primer_pairs, 1);
        assert!(batch.stats.reads_sequenced > 0);
        for (i, outcome) in batch.outcomes.iter().enumerate() {
            let got = outcome.as_ref().unwrap();
            assert_eq!(got.block, sequential[i], "block {i} differs");
            assert_eq!(got.stats.pcr_rounds, 1);
        }
    }

    #[test]
    fn batch_read_spans_partitions_and_sees_updates() {
        let mut store = BlockStore::new(8);
        let a = store
            .create_partition(PartitionConfig::paper_default(18))
            .unwrap();
        let b = store
            .create_partition(PartitionConfig::paper_default(19))
            .unwrap();
        let data_a = crate::workload::deterministic_text(2 * BLOCK_SIZE, 21);
        let mut data_b = crate::workload::deterministic_text(2 * BLOCK_SIZE, 22);
        store.write_file(a, &data_a).unwrap();
        store.write_file(b, &data_b).unwrap();
        data_b[5..10].copy_from_slice(b"PATCH");
        store.update_block(b, 0, &data_b[..BLOCK_SIZE]).unwrap();
        let batch = store
            .read_blocks_batch(&[(a, 0), (b, 0), (a, 1), (b, 1)])
            .unwrap();
        assert!(batch.stats.rounds <= 2, "rounds {}", batch.stats.rounds);
        let blocks: Vec<&Block> = batch
            .outcomes
            .iter()
            .map(|o| &o.as_ref().unwrap().block)
            .collect();
        assert_eq!(blocks[0].data, &data_a[..BLOCK_SIZE]);
        assert_eq!(blocks[1].data, &data_b[..BLOCK_SIZE]);
        assert_eq!(blocks[2].data, &data_a[BLOCK_SIZE..]);
        assert_eq!(blocks[3].data, &data_b[BLOCK_SIZE..]);
        assert_eq!(batch.outcomes[1].as_ref().unwrap().patches_applied, 1);
        assert_eq!(
            batch.stats.wasted_reads,
            batch.stats.reads_sequenced - batch.stats.reads_matched
        );
    }

    #[test]
    fn batch_read_covers_overflow_chains_in_one_round() {
        // A heavily-updated block (direct slots full + overflow chain)
        // must batch-decode byte-exactly: sequencing depth is provisioned
        // per encoding unit from the update metadata, so the extra
        // versions don't starve the per-unit coverage.
        let mut store = BlockStore::new(11);
        let pid = store
            .create_partition(PartitionConfig::paper_default(26))
            .unwrap();
        let data = crate::workload::deterministic_text(2 * BLOCK_SIZE, 33);
        store.write_file(pid, &data).unwrap();
        let mut current = data.clone();
        for i in 0..4u8 {
            current[i as usize] = b'A' + i;
            store.update_block(pid, 0, &current[..BLOCK_SIZE]).unwrap();
        }
        let batch = store.read_blocks_batch(&[(pid, 0), (pid, 1)]).unwrap();
        assert_eq!(batch.stats.rounds, 1, "chain leaves ride the same tube");
        let updated = batch.outcomes[0].as_ref().unwrap();
        assert_eq!(updated.block.data, &current[..BLOCK_SIZE]);
        assert_eq!(updated.patches_applied, 4);
        let clean = batch.outcomes[1].as_ref().unwrap();
        assert_eq!(clean.block.data, &current[BLOCK_SIZE..]);
    }

    #[test]
    fn batch_read_reports_per_block_errors_without_failing() {
        let mut store = BlockStore::new(9);
        let pid = store
            .create_partition(PartitionConfig::paper_default(20))
            .unwrap();
        let data = crate::workload::deterministic_text(BLOCK_SIZE, 23);
        store.write_file(pid, &data).unwrap();
        // Block 0 exists; block 9999 is out of range; block 5 was never
        // written (decode failure).
        let batch = store
            .read_blocks_batch(&[(pid, 0), (pid, 9999), (pid, 5)])
            .unwrap();
        assert_eq!(
            batch.outcomes[0].as_ref().unwrap().block.data,
            &data[..BLOCK_SIZE]
        );
        assert!(matches!(
            batch.outcomes[1],
            Err(StoreError::BlockOutOfRange { block: 9999, .. })
        ));
        assert!(matches!(
            batch.outcomes[2],
            Err(StoreError::DecodeFailed { block: 5, .. })
        ));
        // Unknown partitions still fail the whole call.
        assert!(store.read_blocks_batch(&[(PartitionId(99), 0)]).is_err());
        // Empty batches are free.
        let empty = store.read_blocks_batch(&[]).unwrap();
        assert!(empty.outcomes.is_empty());
        assert_eq!(empty.stats.rounds, 0);
    }

    #[test]
    fn batch_matches_sequential_under_forced_round_split() {
        // A planner capped at one pair per round degenerates into
        // sequential-style rounds but must return the same bytes.
        let mut store = BlockStore::new(10);
        let a = store
            .create_partition(PartitionConfig::paper_default(24))
            .unwrap();
        let b = store
            .create_partition(PartitionConfig::paper_default(25))
            .unwrap();
        let data_a = crate::workload::deterministic_text(BLOCK_SIZE, 31);
        let data_b = crate::workload::deterministic_text(BLOCK_SIZE, 32);
        store.write_file(a, &data_a).unwrap();
        store.write_file(b, &data_b).unwrap();
        let planner = BatchPlanner {
            max_pairs_per_round: 1,
            ..BatchPlanner::paper_default()
        };
        let batch = store
            .read_blocks_batch_planned(&[(a, 0), (b, 0)], &planner)
            .unwrap();
        assert_eq!(batch.stats.rounds, 2);
        assert_eq!(
            batch.outcomes[0].as_ref().unwrap().block.data,
            &data_a[..BLOCK_SIZE]
        );
        assert_eq!(
            batch.outcomes[1].as_ref().unwrap().block.data,
            &data_b[..BLOCK_SIZE]
        );
    }

    #[test]
    fn overlapping_requests_decode_each_leaf_once() {
        // Regression: duplicate / overlapping requests (the shape produced
        // by overlapping read_range windows) must not re-decode a block
        // already fetched earlier in the same call.
        let mut store = BlockStore::new(12);
        let pid = store
            .create_partition(PartitionConfig::paper_default(27))
            .unwrap();
        let data = crate::workload::deterministic_text(4 * BLOCK_SIZE, 34);
        store.write_file(pid, &data).unwrap();
        // Ranges 0..=2 and 1..=3 overlap on blocks 1 and 2.
        let requests = [
            (pid, 0u64),
            (pid, 1),
            (pid, 2),
            (pid, 1),
            (pid, 2),
            (pid, 3),
        ];
        let batch = store.read_blocks_batch(&requests).unwrap();
        assert_eq!(batch.stats.decode_jobs, 4, "4 distinct leaves, 6 requests");
        assert_eq!(batch.stats.rounds, 1);
        for (i, &(_, b)) in requests.iter().enumerate() {
            let got = batch.outcomes[i].as_ref().unwrap();
            let off = b as usize * BLOCK_SIZE;
            assert_eq!(got.block.data, &data[off..off + BLOCK_SIZE], "request {i}");
        }
    }

    #[test]
    fn shared_log_decoded_once_across_rounds() {
        // Two DedicatedLog partitions forced into separate rounds both
        // need the shared log; it must be amplified and decoded in the
        // first round only, with the second round reusing the outcomes.
        let mut store = BlockStore::new(13);
        let mut cfg_a = PartitionConfig::paper_default(28);
        cfg_a.layout = UpdateLayout::DedicatedLog;
        let mut cfg_b = PartitionConfig::paper_default(29);
        cfg_b.layout = UpdateLayout::DedicatedLog;
        let a = store.create_partition(cfg_a).unwrap();
        let b = store.create_partition(cfg_b).unwrap();
        let mut data_a = crate::workload::deterministic_text(BLOCK_SIZE, 35);
        let mut data_b = crate::workload::deterministic_text(BLOCK_SIZE, 36);
        store.write_file(a, &data_a).unwrap();
        store.write_file(b, &data_b).unwrap();
        data_a[3..7].copy_from_slice(b"EDTA");
        store.update_block(a, 0, &data_a).unwrap();
        data_b[9..13].copy_from_slice(b"EDTB");
        store.update_block(b, 0, &data_b).unwrap();
        // Cap rounds at 2 pairs: partition + log fill a tube, so the two
        // partitions split into two rounds, both dragging the log pair.
        let planner = BatchPlanner {
            max_pairs_per_round: 2,
            ..BatchPlanner::paper_default()
        };
        let plan = store.plan_batch(&[(a, 0), (b, 0)], &planner).unwrap();
        assert_eq!(plan.num_rounds(), 2, "forced split: {plan:?}");
        let batch = store
            .read_blocks_batch_planned(&[(a, 0), (b, 0)], &planner)
            .unwrap();
        assert_eq!(batch.stats.rounds, 2);
        // 1 leaf per partition + 2 log entries decoded exactly once.
        assert_eq!(batch.stats.decode_jobs, 4, "{:?}", batch.stats);
        let got_a = batch.outcomes[0].as_ref().unwrap();
        assert_eq!(got_a.block.data, data_a);
        assert_eq!(got_a.patches_applied, 1);
        // The second round's partition still sees its log patch even
        // though its tube never amplified the log — and its per-request
        // stats stay self-consistent: matched reads never exceed the
        // reads its own round sequenced.
        let got_b = batch.outcomes[1].as_ref().unwrap();
        assert_eq!(got_b.block.data, data_b);
        assert_eq!(got_b.patches_applied, 1);
        for outcome in batch.outcomes.iter().map(|o| o.as_ref().unwrap()) {
            assert!(
                outcome.stats.reads_matched <= outcome.stats.reads_sequenced,
                "matched {} > sequenced {}",
                outcome.stats.reads_matched,
                outcome.stats.reads_sequenced
            );
        }
    }

    #[test]
    fn plan_batch_matches_executed_rounds() {
        let mut store = BlockStore::new(14);
        let a = store
            .create_partition(PartitionConfig::paper_default(37))
            .unwrap();
        let b = store
            .create_partition(PartitionConfig::paper_default(38))
            .unwrap();
        let data = crate::workload::deterministic_text(BLOCK_SIZE, 39);
        store.write_file(a, &data).unwrap();
        store.write_file(b, &data).unwrap();
        let planner = BatchPlanner::paper_default();
        let requests = [(a, 0u64), (b, 0u64)];
        let plan = store.plan_batch(&requests, &planner).unwrap();
        let batch = store
            .read_blocks_batch_planned(&requests, &planner)
            .unwrap();
        assert_eq!(plan.num_rounds(), batch.stats.rounds);
        // Planning performs no wetlab work: the store is immutable-borrow
        // only, and planning twice gives the same rounds.
        assert_eq!(plan, store.plan_batch(&requests, &planner).unwrap());
    }

    #[test]
    fn logical_contents_mirror_writes_and_updates() {
        let mut store = BlockStore::new(15);
        let pid = store
            .create_partition(PartitionConfig::paper_default(40))
            .unwrap();
        assert!(store.logical_block(pid, 0).is_none());
        let mut data = crate::workload::deterministic_text(2 * BLOCK_SIZE, 41);
        store.write_file(pid, &data).unwrap();
        assert_eq!(
            store.logical_block(pid, 0).unwrap().data,
            &data[..BLOCK_SIZE]
        );
        data[5..8].copy_from_slice(b"new");
        store.update_block(pid, 0, &data[..BLOCK_SIZE]).unwrap();
        assert_eq!(
            store.logical_block(pid, 0).unwrap().data,
            &data[..BLOCK_SIZE]
        );
        let all: Vec<_> = store.logical_contents().collect();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, (pid, 0));
        assert_eq!(all[1].0, (pid, 1));
    }

    #[test]
    fn compaction_round_trips_and_restores_headroom() {
        // Exhaust a small Interleaved partition's chain space, compact,
        // and verify the wetlab read path returns byte-identical content
        // from the rebased base unit — with the chain gone from the scope.
        let mut store = BlockStore::new(21);
        let pid = store
            .create_partition(PartitionConfig::small(
                0x91,
                3,
                UpdateLayout::paper_default(),
            ))
            .unwrap();
        let mut data = crate::workload::deterministic_text(2 * BLOCK_SIZE, 51);
        store.write_file(pid, &data).unwrap();
        for i in 0..6u8 {
            data[usize::from(i)] = b'A' + i;
            store.update_block(pid, 0, &data[..BLOCK_SIZE]).unwrap();
        }
        assert_eq!(store.retrieval_scope_units(pid, 0).unwrap(), 7);
        let before = store.read_block(pid, 0).unwrap();
        assert_eq!(before.block.data, &data[..BLOCK_SIZE]);
        assert!(before.stats.pcr_rounds > 1, "chain hops cost round-trips");

        let report = store.compact_partition(pid).unwrap();
        assert_eq!(report.blocks_rebased, 1);
        assert!(report.species_retired > 0);
        assert_eq!(store.retrieval_scope_units(pid, 0).unwrap(), 1);
        assert_eq!(
            store.update_headroom(pid, 0).unwrap(),
            2 + 62 * 3,
            "only blocks 0..=1 written: leaves 63..=2 are free again"
        );
        let after = store.read_block(pid, 0).unwrap();
        assert_eq!(after.block.data, &data[..BLOCK_SIZE], "rebased bytes");
        assert_eq!(after.patches_applied, 0);
        assert_eq!(after.stats.pcr_rounds, 1, "no chain to follow");
        assert!(after.stats.reads_sequenced < before.stats.reads_sequenced);
        // The untouched sibling block is unaffected.
        let sibling = store.read_block(pid, 1).unwrap();
        assert_eq!(sibling.block.data, &data[BLOCK_SIZE..]);
        // And updates flow again after the reclaim.
        data[9] = b'!';
        store.update_block(pid, 0, &data[..BLOCK_SIZE]).unwrap();
        let again = store.read_block(pid, 0).unwrap();
        assert_eq!(again.block.data, &data[..BLOCK_SIZE]);
        assert_eq!(again.patches_applied, 1);
    }

    #[test]
    fn compact_log_folds_all_dedicated_log_partitions() {
        let mut store = BlockStore::new(22);
        store
            .set_log_partition_config(PartitionConfig::small(
                0x92,
                2,
                UpdateLayout::paper_default(),
            ))
            .unwrap();
        let a = store
            .create_partition(PartitionConfig::small(0x93, 2, UpdateLayout::DedicatedLog))
            .unwrap();
        let b = store
            .create_partition(PartitionConfig::small(0x94, 2, UpdateLayout::DedicatedLog))
            .unwrap();
        let mut data_a = crate::workload::deterministic_text(BLOCK_SIZE, 52);
        let mut data_b = crate::workload::deterministic_text(BLOCK_SIZE, 53);
        store.write_file(a, &data_a).unwrap();
        store.write_file(b, &data_b).unwrap();
        for i in 0..3u8 {
            data_a[usize::from(i)] = b'a' + i;
            store.update_block(a, 0, &data_a).unwrap();
            data_b[usize::from(i)] = b'x' + i;
            store.update_block(b, 0, &data_b).unwrap();
        }
        assert_eq!(store.log_entries(), 6);
        assert_eq!(store.log_headroom(), 15 - 6);
        let before = store.read_block(a, 0).unwrap();
        assert_eq!(before.block.data, data_a);
        assert_eq!(before.stats.pcr_rounds, 2, "whole-log round");

        let report = store.compact_log().unwrap();
        assert_eq!(report.blocks_rebased, 2);
        assert_eq!(report.partitions_compacted, 3, "log + both partitions");
        // 6 log entries + 2 superseded base units.
        assert_eq!(report.units_reclaimed, 8);
        assert_eq!(store.log_entries(), 0);
        assert_eq!(store.log_headroom(), 15);

        let after_a = store.read_block(a, 0).unwrap();
        assert_eq!(after_a.block.data, data_a);
        assert_eq!(after_a.patches_applied, 0);
        assert_eq!(after_a.stats.pcr_rounds, 1, "empty log round skipped");
        assert!(after_a.stats.reads_sequenced < before.stats.reads_sequenced);
        let after_b = store.read_block(b, 0).unwrap();
        assert_eq!(after_b.block.data, data_b);
        // The log accepts fresh entries from leaf 0 again.
        data_a[9] = b'!';
        store.update_block(a, 0, &data_a).unwrap();
        assert_eq!(store.log_entries(), 1);
        let read = store.read_block(a, 0).unwrap();
        assert_eq!(read.block.data, data_a);
        assert_eq!(read.patches_applied, 1);
    }

    #[test]
    fn log_exhaustion_carries_context_and_headroom_predicts_it() {
        let mut store = BlockStore::new(23);
        store
            .set_log_partition_config(PartitionConfig::small(
                0x95,
                2,
                UpdateLayout::paper_default(),
            ))
            .unwrap();
        let pid = store
            .create_partition(PartitionConfig::small(0x96, 2, UpdateLayout::DedicatedLog))
            .unwrap();
        let mut data = crate::workload::deterministic_text(BLOCK_SIZE, 54);
        store.write_file(pid, &data).unwrap();
        for i in 0..15u8 {
            assert_eq!(store.update_headroom(pid, 0).unwrap(), u64::from(15 - i));
            data[usize::from(i)] = b'a' + i;
            store.update_block(pid, 0, &data).unwrap();
        }
        assert_eq!(store.update_headroom(pid, 0).unwrap(), 0);
        data[20] = b'!';
        let err = store.update_block(pid, 0, &data).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::UpdateSlotsExhausted {
                    block: 0,
                    layout: UpdateLayout::DedicatedLog,
                    chain_len: 15,
                    headroom: 0,
                }
            ),
            "unexpected error {err:?}"
        );
        // set_log_partition_config is rejected once the log exists.
        assert!(store
            .set_log_partition_config(PartitionConfig::paper_default(1))
            .is_err());
    }

    #[test]
    fn log_entry_round_trip() {
        let patch = UpdatePatch::new(3, 4, 5, b"body".to_vec()).unwrap();
        let blk = log_entry_block(7, 99, 12, &patch);
        let (pid, block, seq, got) = parse_log_entry(&blk).unwrap();
        assert_eq!((pid, block, seq), (7, 99, 12));
        assert_eq!(got, patch);
        // Non-entries rejected.
        assert!(parse_log_entry(&Block::zeroed()).is_none());
    }
}
