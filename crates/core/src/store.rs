//! The end-to-end block store over the simulated wetlab.

use crate::block::{unit_checksum_ok, Block, BLOCK_SIZE};
use crate::layout::UpdateLayout;
use crate::partition::{parse_pointer_block, Partition, PartitionConfig, VersionSlot};
use crate::update::UpdatePatch;
use crate::StoreError;
use dna_pipeline::{decode_block_validated, BlockDecodeOutcome};
use dna_primers::{PrimerConstraints, PrimerLibrary, PrimerPair};
use dna_seq::rng::DetRng;
use dna_seq::{Base, DnaSeq};
use dna_sim::{
    IdsChannel, Nanodrop, PcrPrimer, PcrProtocol, PcrReaction, Pool, Read, Sequencer,
    SynthesisVendor,
};
use std::collections::BTreeMap;

/// Handle to a partition within a [`BlockStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PartitionId(pub usize);

/// Wetlab statistics of one block read.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadProtocolStats {
    /// PCR + sequencing round-trips (1 unless overflow pointers were
    /// followed).
    pub pcr_rounds: usize,
    /// Total reads sequenced.
    pub reads_sequenced: usize,
    /// Reads whose primer regions matched the target prefix.
    pub reads_matched: usize,
    /// Clusters reconstructed until coverage was complete (last round).
    pub clusters_used: usize,
}

/// Result of reading one block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockReadOutcome {
    /// The block content with all updates applied.
    pub block: Block,
    /// Number of update patches applied on top of the original.
    pub patches_applied: usize,
    /// Wetlab statistics.
    pub stats: ReadProtocolStats,
}

/// The full system: partitions, the archival DNA pool, and the simulated
/// instruments.
///
/// The store also keeps a *digital front-end cache* of logical block
/// contents (§5.4: "Most DNA-storage systems will have digital front-ends")
/// — used to compute update diffs; all read paths go through the wetlab.
#[derive(Debug, Clone)]
pub struct BlockStore {
    partitions: Vec<Partition>,
    logical: BTreeMap<(usize, u64), Block>,
    pool: Pool,
    rng: DetRng,
    twist: SynthesisVendor,
    idt: SynthesisVendor,
    sequencer: Sequencer,
    nanodrop: Nanodrop,
    primer_library: PrimerLibrary,
    primers_handed_out: usize,
    /// Reads sampled per expected strand during retrieval.
    coverage: usize,
    /// The shared update-log partition (created on demand for
    /// [`UpdateLayout::DedicatedLog`]).
    log_partition: Option<usize>,
    /// Monotonic sequence number for log-layout updates.
    log_seq: u32,
    /// Next free leaf in the log partition.
    log_head: u64,
}

impl BlockStore {
    /// Creates a store with a deterministic seed. The seed drives primer
    /// library generation, synthesis skew and read sampling — two stores
    /// with the same seed and call sequence behave identically.
    pub fn new(seed: u64) -> BlockStore {
        let constraints = PrimerConstraints::paper_default(20);
        let primer_library =
            PrimerLibrary::generate_with_distance(&constraints, 8, 64, 400_000, seed ^ 0x9121);
        BlockStore {
            partitions: Vec::new(),
            logical: BTreeMap::new(),
            pool: Pool::new(),
            rng: DetRng::seed_from_u64(seed),
            twist: SynthesisVendor::twist(),
            idt: SynthesisVendor::idt(),
            sequencer: Sequencer::new(IdsChannel::illumina()),
            nanodrop: Nanodrop::benchtop(),
            primer_library,
            primers_handed_out: 0,
            coverage: 12,
            log_partition: None,
            log_seq: 0,
            log_head: 0,
        }
    }

    /// Sets the sequencing coverage (reads per expected strand).
    pub fn set_coverage(&mut self, coverage: usize) {
        assert!(coverage > 0, "coverage must be positive");
        self.coverage = coverage;
    }

    /// Replaces the sequencer (e.g. to inject nanopore-grade noise).
    pub fn set_sequencer(&mut self, sequencer: Sequencer) {
        self.sequencer = sequencer;
    }

    /// The archival pool (inspection/benches).
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// Mutable pool access for custom bench protocols.
    pub fn pool_mut(&mut self) -> &mut Pool {
        &mut self.pool
    }

    /// Borrow a partition.
    ///
    /// # Errors
    ///
    /// Unknown ids are rejected.
    pub fn partition(&self, pid: PartitionId) -> Result<&Partition, StoreError> {
        self.partitions
            .get(pid.0)
            .ok_or(StoreError::UnknownPartition(pid.0))
    }

    /// Creates a partition, assigning the next compatible primer pair.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoPrimerPairAvailable`] when the primer library is
    /// exhausted (§1: only ~1000–3000 compatible primers exist at length
    /// 20 — the scarcity that motivates this whole design).
    pub fn create_partition(&mut self, config: PartitionConfig) -> Result<PartitionId, StoreError> {
        let pair = self.next_primer_pair()?;
        let mut config = config;
        config.partition_tag = self.partitions.len() as u32;
        self.partitions.push(Partition::new(config, pair));
        Ok(PartitionId(self.partitions.len() - 1))
    }

    fn next_primer_pair(&mut self) -> Result<PrimerPair, StoreError> {
        if self.primers_handed_out + 2 > self.primer_library.len() {
            return Err(StoreError::NoPrimerPairAvailable);
        }
        let fwd = self.primer_library.primer(self.primers_handed_out).clone();
        let rev = self
            .primer_library
            .primer(self.primers_handed_out + 1)
            .clone();
        self.primers_handed_out += 2;
        Ok(PrimerPair::new(fwd, rev))
    }

    /// Writes `data` as consecutive blocks starting at block 0, synthesizes
    /// the strands (Twist vendor model) and adds them to the pool. Returns
    /// the number of blocks written.
    ///
    /// # Errors
    ///
    /// Propagates partition errors (range, double write).
    pub fn write_file(&mut self, pid: PartitionId, data: &[u8]) -> Result<u64, StoreError> {
        self.write_file_at(pid, 0, data)
    }

    /// Writes `data` as consecutive blocks starting at `first_block`.
    ///
    /// # Errors
    ///
    /// Propagates partition errors (range, double write).
    pub fn write_file_at(
        &mut self,
        pid: PartitionId,
        first_block: u64,
        data: &[u8],
    ) -> Result<u64, StoreError> {
        let partition = self
            .partitions
            .get_mut(pid.0)
            .ok_or(StoreError::UnknownPartition(pid.0))?;
        let blocks = data.chunks(BLOCK_SIZE).collect::<Vec<_>>();
        let mut designs = Vec::new();
        for (i, chunk) in blocks.iter().enumerate() {
            let block_id = first_block + i as u64;
            let block = Block::from_bytes(chunk)?;
            designs.extend(partition.encode_block(block_id, &block)?);
            self.logical.insert((pid.0, block_id), block);
        }
        let synthesized = self.twist.synthesize(&designs, &mut self.rng);
        self.pool = self.pool.mixed_with(&synthesized, 1.0, 1.0);
        Ok(blocks.len() as u64)
    }

    /// Updates a block to `new_content`: computes a §6.4 diff patch against
    /// the logical cache, synthesizes it (IDT vendor model, 50000× more
    /// concentrated), and mixes it into the pool at matched per-oligo
    /// concentration (§6.4.2).
    ///
    /// # Errors
    ///
    /// Fails when the block was never written, the change cannot fit one
    /// patch, or the address space is exhausted.
    pub fn update_block(
        &mut self,
        pid: PartitionId,
        block: u64,
        new_content: &[u8],
    ) -> Result<(), StoreError> {
        let old = self
            .logical
            .get(&(pid.0, block))
            .cloned()
            .ok_or(StoreError::BlockNotWritten(block))?;
        let new = Block::from_bytes(new_content)?;
        let patch = UpdatePatch::diff(&old, &new).ok_or_else(|| {
            StoreError::InvalidPatch("change too large for one patch".to_string())
        })?;
        let layout = self.partition(pid)?.config().layout;
        let designs = match layout {
            UpdateLayout::DedicatedLog => self.encode_log_update(pid, block, &patch)?,
            _ => {
                let partition = self
                    .partitions
                    .get_mut(pid.0)
                    .ok_or(StoreError::UnknownPartition(pid.0))?;
                partition.encode_update(block, &patch)?.1
            }
        };
        // Synthesize with the small-batch vendor and mix at matched
        // per-oligo concentration.
        let update_pool = self.idt.synthesize(&designs, &mut self.rng);
        let data_per_oligo =
            self.nanodrop
                .measure_per_oligo(&self.pool, self.pool.distinct().max(1), &mut self.rng);
        let update_per_oligo = self.nanodrop.measure_per_oligo(
            &update_pool,
            update_pool.distinct().max(1),
            &mut self.rng,
        );
        let dilution = (data_per_oligo / update_per_oligo).min(1.0);
        self.pool = self.pool.mixed_with(&update_pool, 1.0, dilution);
        self.logical.insert((pid.0, block), new);
        Ok(())
    }

    /// Routes a DedicatedLog-layout update into the shared log partition.
    fn encode_log_update(
        &mut self,
        pid: PartitionId,
        block: u64,
        patch: &UpdatePatch,
    ) -> Result<Vec<dna_sim::Molecule>, StoreError> {
        let log_pid = match self.log_partition {
            Some(p) => p,
            None => {
                let pair = self.next_primer_pair()?;
                let mut cfg = PartitionConfig::paper_default(0x106);
                cfg.partition_tag = 1000; // distinguish log strands in tags
                self.partitions.push(Partition::new(cfg, pair));
                let p = self.partitions.len() - 1;
                self.log_partition = Some(p);
                p
            }
        };
        let entry = log_entry_block(pid.0 as u32, block, self.log_seq, patch);
        self.log_seq += 1;
        let leaf = self.log_head;
        self.log_head += 1;
        let log_partition = &mut self.partitions[log_pid];
        let molecules = log_partition.encode_block(leaf, &entry)?;
        self.partitions[pid.0].note_external_update(block);
        Ok(molecules)
    }

    /// Reads one block through the full wetlab path: precise PCR with the
    /// block's elongated primer (multiplexed with chain/region primers as
    /// the layout requires), sequencing, clustering, trace reconstruction,
    /// RS decoding and patch application. Follows overflow pointers with
    /// extra round-trips when present.
    ///
    /// # Errors
    ///
    /// [`StoreError::DecodeFailed`] if any required unit cannot be
    /// recovered.
    pub fn read_block(
        &mut self,
        pid: PartitionId,
        block: u64,
    ) -> Result<BlockReadOutcome, StoreError> {
        let layout = self.partition(pid)?.config().layout;
        let mut stats = ReadProtocolStats {
            pcr_rounds: 0,
            reads_sequenced: 0,
            reads_matched: 0,
            clusters_used: 0,
        };
        // Round 1: the block's leaf (plus the update region for TwoStacks).
        let (mut current, mut patches): (Block, Vec<UpdatePatch>) = match layout {
            UpdateLayout::Interleaved { update_slots } => {
                self.read_interleaved(pid, block, update_slots, &mut stats)?
            }
            UpdateLayout::TwoStacks => self.read_two_stacks(pid, block, &mut stats)?,
            UpdateLayout::DedicatedLog => self.read_with_dedicated_log(pid, block, &mut stats)?,
        };
        let patches_applied = patches.len();
        for patch in patches.drain(..) {
            current = patch.apply(&current)?;
        }
        Ok(BlockReadOutcome {
            block: current,
            patches_applied,
            stats,
        })
    }

    /// Reads a contiguous block range via one multiplexed precise PCR
    /// (§3.1 prefix cover). Updates are applied per block.
    ///
    /// # Errors
    ///
    /// Fails if any block in the range cannot be decoded.
    pub fn read_range(
        &mut self,
        pid: PartitionId,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<Block>, StoreError> {
        let partition = self.partition(pid)?;
        let primers = partition.range_prefixes_weighted(lo, hi);
        let rev = partition.primers().reverse().clone();
        let expected_units = (hi - lo + 1) as usize * 2;
        let reads = self.run_retrieval(&primers, &rev, expected_units);
        let mut out = Vec::new();
        for block in lo..=hi {
            let partition = self.partition(pid)?;
            let prefix = partition.elongated_primer(block);
            let cfg = partition.decode_config(block);
            let outcome = decode_block_validated(&reads, &prefix, &rev, &cfg, unit_checksum_ok);
            let (mut content, patches) = interpret_interleaved(&outcome, block)?;
            for p in patches {
                content = p.apply(&content)?;
            }
            out.push(content);
        }
        Ok(out)
    }

    // ----- layout-specific read paths ---------------------------------------

    fn read_interleaved(
        &mut self,
        pid: PartitionId,
        block: u64,
        update_slots: u8,
        stats: &mut ReadProtocolStats,
    ) -> Result<(Block, Vec<UpdatePatch>), StoreError> {
        let mut patches = Vec::new();
        let mut original: Option<Block> = None;
        let mut leaf = block;
        // Follow the pointer chain; the common case is a single round-trip.
        for _hop in 0..64 {
            let partition = self.partition(pid)?;
            let prefix = partition.elongated_primer(leaf);
            let rev = partition.primers().reverse().clone();
            let cfg = partition.decode_config(leaf);
            let reads = self.run_retrieval(&[(prefix.clone(), 1.0)], &rev, 4);
            stats.pcr_rounds += 1;
            stats.reads_sequenced += reads.len();
            let outcome = decode_block_validated(&reads, &prefix, &rev, &cfg, unit_checksum_ok);
            stats.reads_matched += outcome.reads_matched;
            stats.clusters_used = outcome.clusters_used;
            let mut next_leaf = None;
            for (base, v) in &outcome.versions {
                let slot = VersionSlot::from_base(*base);
                let content = Block::from_unit_bytes(&v.unit_bytes).map_err(|_| {
                    StoreError::DecodeFailed {
                        block,
                        reason: format!("unit checksum at leaf {leaf} slot {}", slot.0),
                    }
                })?;
                if leaf == block && slot.0 == 0 {
                    original = Some(content);
                } else if slot.0 == update_slots {
                    // pointer slot
                    match parse_pointer_block(&content) {
                        Some(target) => next_leaf = Some(target),
                        None => {
                            return Err(StoreError::DecodeFailed {
                                block,
                                reason: format!("malformed pointer at leaf {leaf}"),
                            })
                        }
                    }
                } else {
                    patches.push((leaf, slot.0, UpdatePatch::from_block(&content)?));
                }
            }
            if outcome.versions.is_empty() && leaf == block {
                return Err(StoreError::DecodeFailed {
                    block,
                    reason: "no versions recovered".to_string(),
                });
            }
            match next_leaf {
                Some(target) => leaf = target,
                None => break,
            }
        }
        let original = original.ok_or(StoreError::DecodeFailed {
            block,
            reason: "original version missing".to_string(),
        })?;
        // Patches are already in (hop, slot) order: chain hops were visited
        // chronologically and slots sort by version base.
        let ordered = patches.into_iter().map(|(_, _, p)| p).collect();
        Ok((original, ordered))
    }

    fn read_two_stacks(
        &mut self,
        pid: PartitionId,
        block: u64,
        stats: &mut ReadProtocolStats,
    ) -> Result<(Block, Vec<UpdatePatch>), StoreError> {
        let partition = self.partition(pid)?;
        let rev = partition.primers().reverse().clone();
        let update_leaves: Vec<u64> = partition.chain_of(block).to_vec();
        // Fig. 7 cost: the block plus the ENTIRE used update region must be
        // amplified, with primer concentrations weighted by covered leaves.
        let stack_updates = partition.stack_update_count();
        let mut scope: Vec<(DnaSeq, f64)> = vec![(partition.elongated_primer(block), 1.0)];
        if stack_updates > 0 {
            let lo = partition.num_leaves() - stack_updates;
            let hi = partition.num_leaves() - 1;
            scope.extend(partition.range_prefixes_weighted(lo, hi));
        }
        let expected_units = 1 + stack_updates as usize;
        let reads = self.run_retrieval(&scope, &rev, expected_units);
        stats.pcr_rounds += 1;
        stats.reads_sequenced += reads.len();
        // Decode the block itself.
        let partition = self.partition(pid)?;
        let prefix = partition.elongated_primer(block);
        let cfg = partition.decode_config(block);
        let outcome = decode_block_validated(&reads, &prefix, &rev, &cfg, unit_checksum_ok);
        stats.reads_matched += outcome.reads_matched;
        let (original, _) = interpret_interleaved(&outcome, block)?;
        // Decode this block's update leaves (known from metadata; their
        // content is self-ordering via version slots 0 at distinct leaves).
        let mut patches = Vec::new();
        for &leaf in &update_leaves {
            let partition = self.partition(pid)?;
            let prefix = partition.elongated_primer(leaf);
            let cfg = partition.decode_config(leaf);
            let o = decode_block_validated(&reads, &prefix, &rev, &cfg, unit_checksum_ok);
            stats.reads_matched += o.reads_matched;
            if let Some(v) = o.versions.get(&Base::A) {
                let content = Block::from_unit_bytes(&v.unit_bytes).map_err(|_| {
                    StoreError::DecodeFailed {
                        block,
                        reason: format!("update unit at leaf {leaf}"),
                    }
                })?;
                patches.push(UpdatePatch::from_block(&content)?);
            } else {
                return Err(StoreError::DecodeFailed {
                    block,
                    reason: format!("update leaf {leaf} unrecovered"),
                });
            }
        }
        Ok((original, patches))
    }

    fn read_with_dedicated_log(
        &mut self,
        pid: PartitionId,
        block: u64,
        stats: &mut ReadProtocolStats,
    ) -> Result<(Block, Vec<UpdatePatch>), StoreError> {
        // Round 1: the data block.
        let partition = self.partition(pid)?;
        let prefix = partition.elongated_primer(block);
        let rev = partition.primers().reverse().clone();
        let cfg = partition.decode_config(block);
        let reads = self.run_retrieval(&[(prefix.clone(), 1.0)], &rev, 2);
        stats.pcr_rounds += 1;
        stats.reads_sequenced += reads.len();
        let outcome = decode_block_validated(&reads, &prefix, &rev, &cfg, unit_checksum_ok);
        stats.reads_matched += outcome.reads_matched;
        let (original, _) = interpret_interleaved(&outcome, block)?;
        // Round 2: the ENTIRE shared log (the §5.3 Fig. 6 cost).
        let mut patches = Vec::new();
        if let Some(log_pid) = self.log_partition {
            let log = &self.partitions[log_pid];
            let log_fwd = {
                let mut p = log.primers().forward().clone();
                for _ in 0..log.config().geometry.sync_len {
                    p.push(Base::A);
                }
                p
            };
            let log_rev = log.primers().reverse().clone();
            let entries = self.log_head;
            let reads =
                self.run_retrieval(&[(log_fwd.clone(), 1.0)], &log_rev, entries as usize + 1);
            stats.pcr_rounds += 1;
            stats.reads_sequenced += reads.len();
            let mut found: Vec<(u32, UpdatePatch)> = Vec::new();
            for leaf in 0..entries {
                let log = &self.partitions[log_pid];
                let prefix = log.elongated_primer(leaf);
                let cfg = log.decode_config(leaf);
                let o = decode_block_validated(&reads, &prefix, &log_rev, &cfg, unit_checksum_ok);
                stats.reads_matched += o.reads_matched;
                if let Some(v) = o.versions.get(&Base::A) {
                    if let Ok(content) = Block::from_unit_bytes(&v.unit_bytes) {
                        if let Some((epid, eblock, seq, patch)) = parse_log_entry(&content) {
                            if epid == pid.0 as u32 && eblock == block {
                                found.push((seq, patch));
                            }
                        }
                    }
                }
            }
            found.sort_by_key(|&(seq, _)| seq);
            patches.extend(found.into_iter().map(|(_, p)| p));
        }
        Ok((original, patches))
    }

    /// Runs one precise PCR (multiplexed over weighted `primers`) on the
    /// pool and sequences the product. Primer budgets are proportional to
    /// each primer's weight (the number of leaves it covers), so every leaf
    /// in scope amplifies evenly (§3.2).
    fn run_retrieval(
        &mut self,
        primers: &[(DnaSeq, f64)],
        rev: &DnaSeq,
        expected_units: usize,
    ) -> Vec<Read> {
        let initial = self.pool.total_copies();
        let budget = initial * 20.0;
        let total_weight: f64 = primers.iter().map(|(_, w)| w.max(1e-9)).sum();
        let rxn = PcrReaction {
            forward_primers: primers
                .iter()
                .map(|(p, w)| {
                    PcrPrimer::with_budget(p.clone(), budget * w.max(1e-9) / total_weight)
                })
                .collect(),
            reverse_primer: PcrPrimer::with_budget(rev.clone(), budget),
            protocol: PcrProtocol::paper_block_access(),
        };
        let out = rxn.run(&self.pool);
        let strands = expected_units.max(1) * 15;
        let n_reads = strands * self.coverage;
        self.sequencer.sequence(&out.pool, n_reads, &mut self.rng)
    }
}

/// Extracts the original block and its in-leaf patches from a decode
/// outcome (Interleaved semantics: slot 0 = original, others = patches).
fn interpret_interleaved(
    outcome: &BlockDecodeOutcome,
    block: u64,
) -> Result<(Block, Vec<UpdatePatch>), StoreError> {
    let original = outcome
        .versions
        .get(&Base::A)
        .ok_or(StoreError::DecodeFailed {
            block,
            reason: "original version missing".to_string(),
        })
        .and_then(|v| {
            Block::from_unit_bytes(&v.unit_bytes).map_err(|_| StoreError::DecodeFailed {
                block,
                reason: "unit checksum".to_string(),
            })
        })?;
    let mut patches = Vec::new();
    for (base, v) in &outcome.versions {
        if *base == Base::A {
            continue;
        }
        let content =
            Block::from_unit_bytes(&v.unit_bytes).map_err(|_| StoreError::DecodeFailed {
                block,
                reason: "update unit checksum".to_string(),
            })?;
        if parse_pointer_block(&content).is_none() {
            patches.push(UpdatePatch::from_block(&content)?);
        }
    }
    Ok((original, patches))
}

/// Serializes a DedicatedLog entry: marker, partition, block, sequence
/// number, then the patch wire format.
fn log_entry_block(pid: u32, block: u64, seq: u32, patch: &UpdatePatch) -> Block {
    let mut bytes = vec![0xFEu8];
    bytes.extend_from_slice(&pid.to_le_bytes());
    bytes.extend_from_slice(&block.to_le_bytes());
    bytes.extend_from_slice(&seq.to_le_bytes());
    let wire = patch.to_block();
    bytes.push(wire.data[0]);
    bytes.push(wire.data[1]);
    bytes.push(wire.data[2]);
    bytes.push(wire.data[3]);
    bytes.extend_from_slice(&patch.ins_bytes);
    Block::from_bytes(&bytes).expect("log entry fits")
}

/// Parses a DedicatedLog entry.
fn parse_log_entry(block: &Block) -> Option<(u32, u64, u32, UpdatePatch)> {
    let d = &block.data;
    if d[0] != 0xFE {
        return None;
    }
    let pid = u32::from_le_bytes(d[1..5].try_into().ok()?);
    let target = u64::from_le_bytes(d[5..13].try_into().ok()?);
    let seq = u32::from_le_bytes(d[13..17].try_into().ok()?);
    let ins_len = usize::from(d[20]);
    if 21 + ins_len > d.len() {
        return None;
    }
    let patch = UpdatePatch::new(d[17], d[18], d[19], d[21..21 + ins_len].to_vec()).ok()?;
    Some((pid, target, seq, patch))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trip() {
        let mut store = BlockStore::new(1);
        let pid = store
            .create_partition(PartitionConfig::paper_default(11))
            .unwrap();
        let data = crate::workload::deterministic_text(3 * BLOCK_SIZE, 5);
        assert_eq!(store.write_file(pid, &data).unwrap(), 3);
        for b in 0..3u64 {
            let out = store.read_block(pid, b).unwrap();
            assert_eq!(
                out.block.data,
                &data[b as usize * BLOCK_SIZE..(b as usize + 1) * BLOCK_SIZE],
                "block {b}"
            );
            assert_eq!(out.patches_applied, 0);
            assert_eq!(out.stats.pcr_rounds, 1);
        }
    }

    #[test]
    fn update_then_read_applies_patch() {
        let mut store = BlockStore::new(2);
        let pid = store
            .create_partition(PartitionConfig::paper_default(12))
            .unwrap();
        let mut data = crate::workload::deterministic_text(2 * BLOCK_SIZE, 6);
        store.write_file(pid, &data).unwrap();
        // Edit a few bytes of block 1.
        data[BLOCK_SIZE + 10..BLOCK_SIZE + 15].copy_from_slice(b"EDIT!");
        store
            .update_block(pid, 1, &data[BLOCK_SIZE..2 * BLOCK_SIZE])
            .unwrap();
        let out = store.read_block(pid, 1).unwrap();
        assert_eq!(out.block.data, &data[BLOCK_SIZE..2 * BLOCK_SIZE]);
        assert_eq!(out.patches_applied, 1);
        // Unupdated block unaffected.
        let out0 = store.read_block(pid, 0).unwrap();
        assert_eq!(out0.block.data, &data[..BLOCK_SIZE]);
        assert_eq!(out0.patches_applied, 0);
    }

    #[test]
    fn multiple_updates_apply_in_order() {
        let mut store = BlockStore::new(3);
        let pid = store
            .create_partition(PartitionConfig::paper_default(13))
            .unwrap();
        let data = crate::workload::deterministic_text(BLOCK_SIZE, 7);
        store.write_file(pid, &data).unwrap();
        let mut current = data.clone();
        current[0..3].copy_from_slice(b"one");
        store.update_block(pid, 0, &current).unwrap();
        current[4..7].copy_from_slice(b"two");
        store.update_block(pid, 0, &current).unwrap();
        let out = store.read_block(pid, 0).unwrap();
        assert_eq!(out.block.data, current);
        assert_eq!(out.patches_applied, 2);
        assert_eq!(out.stats.pcr_rounds, 1, "direct slots need one round-trip");
    }

    #[test]
    fn overflow_chain_follows_pointers() {
        let mut store = BlockStore::new(4);
        let pid = store
            .create_partition(PartitionConfig::paper_default(14))
            .unwrap();
        let data = crate::workload::deterministic_text(BLOCK_SIZE, 8);
        store.write_file(pid, &data).unwrap();
        let mut current = data.clone();
        for i in 0..4u8 {
            current[i as usize] = b'A' + i;
            store.update_block(pid, 0, &current).unwrap();
        }
        let out = store.read_block(pid, 0).unwrap();
        assert_eq!(out.block.data, current);
        assert_eq!(out.patches_applied, 4);
        assert!(
            out.stats.pcr_rounds >= 2,
            "chain requires a second round-trip"
        );
    }

    #[test]
    fn read_range_returns_consecutive_blocks() {
        let mut store = BlockStore::new(5);
        let pid = store
            .create_partition(PartitionConfig::paper_default(15))
            .unwrap();
        let data = crate::workload::deterministic_text(5 * BLOCK_SIZE, 9);
        store.write_file(pid, &data).unwrap();
        let blocks = store.read_range(pid, 1, 3).unwrap();
        assert_eq!(blocks.len(), 3);
        for (i, b) in blocks.iter().enumerate() {
            let off = (i + 1) * BLOCK_SIZE;
            assert_eq!(b.data, &data[off..off + BLOCK_SIZE]);
        }
    }

    #[test]
    fn unknown_partition_and_block_errors() {
        let mut store = BlockStore::new(6);
        assert!(matches!(
            store.read_block(PartitionId(0), 0),
            Err(StoreError::UnknownPartition(0))
        ));
        let pid = store
            .create_partition(PartitionConfig::paper_default(16))
            .unwrap();
        assert!(matches!(
            store.update_block(pid, 0, &[0u8; 10]),
            Err(StoreError::BlockNotWritten(0))
        ));
    }

    #[test]
    fn log_entry_round_trip() {
        let patch = UpdatePatch::new(3, 4, 5, b"body".to_vec()).unwrap();
        let blk = log_entry_block(7, 99, 12, &patch);
        let (pid, block, seq, got) = parse_log_entry(&blk).unwrap();
        assert_eq!((pid, block, seq), (7, 99, 12));
        assert_eq!(got, patch);
        // Non-entries rejected.
        assert!(parse_log_entry(&Block::zeroed()).is_none());
    }
}
