//! The concurrent store frontend: a thread-safe server over the sharded
//! [`BlockStore`] with cross-request read coalescing and an update-aware
//! decoded-block cache.
//!
//! The paper's cost model wins by *amortizing* wetlab work (§7): one
//! multiplex PCR round serves many primer-addressed targets.
//! [`BlockStore::read_blocks_batch`] realizes that for a single caller;
//! [`StoreServer`] realizes it *across callers*. Read requests arriving
//! from many client threads are held in a bounded batching window
//! ([`BatchWindow`]) and coalesced into one batched retrieval — the
//! [`crate::batch::BatchPlanner`] packs the touched partitions into
//! primer-compatible multiplex rounds, the store dispatches those rounds
//! (disjoint shard sets) concurrently on scoped threads, and each round's
//! read pool is demultiplexed and decoded in parallel
//! ([`dna_pipeline::decode_jobs_parallel`]). On top of that, a
//! [`BlockCache`] serves repeated reads of hot blocks with **zero**
//! simulated wetlab cost (the read-mostly access pattern of rewritable
//! DNA systems, Yazdi et al. 2015), and [`StoreServer::update_block`]
//! keeps it coherent through shard **epochs** rather than a store-wide
//! lock.
//!
//! # Concurrency protocol
//!
//! The store is internally sharded (see [`crate::store`] for its lock
//! order); the server never holds a store lock — store operations take
//! `&self` and synchronize internally. On top of the store sit two
//! service locks and a bank of counters:
//!
//! 1. **front end** (cache + staleness oracle) — every entry carries the
//!    shard epoch of the commit that produced it. A mutation with an
//!    older epoch than the entry's is discarded, so cache and oracle
//!    converge to store commit order no matter how threads interleave
//!    between a store commit and its front-end publication. Cache *hits*
//!    take only this lock, which is why a warm read never waits behind an
//!    executing wetlab round — and with the store unlocked too, a cold
//!    read of shard A never waits behind an update writing shard B.
//! 2. **scheduler** (pending queue + tickets) — the first thread to queue
//!    a miss becomes the *leader*: it waits out the batching window,
//!    drains every read queued meanwhile, executes them as one batch, and
//!    publishes per-ticket results. Followers just block on their ticket.
//! 3. **stats** — lock-free atomics ([`ServerStats`] is a consistent
//!    snapshot: each counter is a point-in-time atomic load, and
//!    `reads_served` is *derived* as `cache_hits + cache_misses` so that
//!    invariant holds exactly in every snapshot).
//!
//! Service locks never nest with store locks (neither is held while the
//! other layer is called), so the global lock order is simply the store's
//! own, followed by front end, followed by scheduler. Both service locks
//! are [`crate::sync::RankedMutex`]es ranked after every store lock, so
//! the runtime lockdep enforces exactly that on every debug/test run: a
//! path that calls into the store while holding the front or scheduler
//! lock panics naming both acquisition sites (see README § "Lock
//! discipline & static checks").
//!
//! # Panic containment
//!
//! A panicking client thread must not brick the server. Three layers
//! enforce that: the store runs its fallible wetlab/decode phases outside
//! all locks (a panic there poisons nothing); the service locks recover
//! from poisoning (their critical sections are pure map/counter updates,
//! so a poisoned guard still holds consistent state); and a leader that
//! panicks mid-batch publishes [`StoreError::ServerPanicked`] to every
//! ticket it had drained (via a drop guard), so followers fail fast
//! instead of hanging.
//!
//! The observable contract is [`ServerStats`]: `stale_serves` (cache hits
//! that disagreed with the store's §5.4 digital front-end oracle) must be
//! zero under any interleaving, `cache_hits + cache_misses` always equals
//! `reads_served`, and `reads_coalesced` counts the requests that shared
//! another request's round-trip. The stress suite (`tests/stress.rs`)
//! pins all three under seeded multi-threaded read/update mixes.

use crate::batch::BatchPlanner;
use crate::block::{checksum64, Block};
use crate::cache::{BlockCache, CacheKey};
use crate::compaction::{CompactionPolicy, CompactionReport, Compactor};
use crate::partition::PartitionConfig;
use crate::store::{BlockReadOutcome, BlockStore, PartitionId};
use crate::sync::{LockRank, RankedMutex, RankedMutexGuard};
use crate::StoreError;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, PoisonError};
use std::time::{Duration, Instant};

/// How long the scheduler leader holds a round open for co-arriving reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchWindow {
    /// Execute immediately with whatever is queued — lowest latency, no
    /// cross-request coalescing beyond requests already waiting.
    Immediate,
    /// Wait up to this long (or until `max_batch` reads are pending) before
    /// executing — the bounded batching window that trades a little
    /// latency for fewer wetlab rounds.
    Window(Duration),
    /// Wait until [`StoreServer::release_batch`] is called. Deterministic
    /// coalescing for tests: queue exactly the requests you want in one
    /// round, then open the gate.
    Gate,
}

/// The leader's per-wakeup decision inside a [`BatchWindow::Window`]:
/// execute the batch now, or park again for the remaining window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WindowPoll {
    /// Drain and execute the queued reads now.
    Execute,
    /// Park on the arrivals condvar for at most this long.
    Wait(Duration),
}

/// Pure decision core of the [`BatchWindow::Window`] leader loop, factored
/// out so its behavior under *spurious* condvar wakeups is provable without
/// a clock: a wakeup that changed nothing (same pending count, deadline not
/// reached) yields `Wait(remaining)` again — never an early `Execute`, and
/// never a zero-duration wait that would busy-spin — while a reached
/// deadline or a filled batch yields `Execute` regardless of how the
/// wakeup happened.
fn window_poll(remaining: Duration, pending: usize, max_batch: usize) -> WindowPoll {
    if max_batch != 0 && pending >= max_batch {
        return WindowPoll::Execute; // early trigger: the window is full
    }
    if remaining.is_zero() {
        return WindowPoll::Execute; // deadline reached
    }
    WindowPoll::Wait(remaining)
}

/// What [`StoreServer::update_block`] does to the cached copy of the
/// updated block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePolicy {
    /// Drop exactly the updated key; the next read re-pays one wetlab
    /// round and re-populates the cache.
    Invalidate,
    /// Replace the cached copy with the post-update image (known digitally
    /// at update time), so even the first re-read after an update is a
    /// zero-wetlab hit.
    Refresh,
}

/// Configuration for a [`StoreServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Decoded-block cache capacity in blocks (`0` disables caching).
    pub cache_capacity: usize,
    /// Cache coherence policy on updates.
    pub cache_policy: CachePolicy,
    /// The read-coalescing batching window.
    pub window: BatchWindow,
    /// Execute early once this many reads are pending (`0` = no early
    /// trigger). Only meaningful for [`BatchWindow::Window`].
    pub max_batch: usize,
    /// Round planner used for coalesced batches (primer-compatibility
    /// grouping and per-tube pair caps).
    pub planner: BatchPlanner,
    /// Compaction policy for the maintenance path (`None` disables
    /// maintenance). With a policy set, the server compacts a partition
    /// *before* committing an update that would leave it under
    /// [`CompactionPolicy::min_headroom`] — so sustained update traffic
    /// whose exhaustion pressure comes from *accumulated updates* never
    /// hits [`StoreError::UpdateSlotsExhausted`]. (Compaction reclaims
    /// only previously-consumed update capacity: a partition whose address
    /// space is packed solid with data has nothing to fold and still
    /// exhausts — that is a provisioning problem, not a maintenance one.)
    /// The server also runs a threshold-driven [`Compactor`] pass between
    /// coalesced batches to fold hot blocks' patch chains back into cheap
    /// single-unit reads.
    pub compaction: Option<CompactionPolicy>,
}

impl ServerConfig {
    /// Serving defaults: a 1024-block cache with invalidate-on-update, a
    /// 2 ms batching window triggered early at 64 pending reads, and the
    /// paper-grade batch planner.
    pub fn paper_default() -> ServerConfig {
        ServerConfig {
            cache_capacity: 1024,
            cache_policy: CachePolicy::Invalidate,
            window: BatchWindow::Window(Duration::from_millis(2)),
            max_batch: 64,
            planner: BatchPlanner::paper_default(),
            compaction: None,
        }
    }

    /// The serving defaults with a compaction policy enabled.
    pub fn with_compaction(policy: CompactionPolicy) -> ServerConfig {
        ServerConfig {
            compaction: Some(policy),
            ..ServerConfig::paper_default()
        }
    }
}

/// Aggregate serving statistics — the observable contract the stress and
/// scenario suites assert on. All counters are cumulative since server
/// construction.
///
/// Produced by [`StoreServer::stats`] as a consistent snapshot of the
/// server's lock-free counters: every field is a point-in-time atomic
/// load, every counter is monotonic, and `reads_served` is derived as
/// `cache_hits + cache_misses` at snapshot time so that identity holds
/// exactly in every snapshot (not just at quiescence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Client calls accepted (each `read_block`, `read_range`, and
    /// `update_block` counts once, successful or not).
    pub requests: u64,
    /// Block reads served (a range read counts once per block). Always
    /// equals `cache_hits + cache_misses`.
    pub reads_served: u64,
    /// Reads answered from the decoded-block cache — zero wetlab cost.
    pub cache_hits: u64,
    /// Reads that had to go to the wetlab.
    pub cache_misses: u64,
    /// Coalesced batches executed against the store.
    pub batches_executed: u64,
    /// Multiplex PCR + sequencing rounds executed — the paper's unit of
    /// wetlab cost.
    pub rounds_executed: u64,
    /// Reads that shared a wetlab round with a read from a *different*
    /// client call — the cross-request amortization the scheduler exists
    /// for. A multi-block `read_range` batching with itself does not
    /// count.
    pub reads_coalesced: u64,
    /// Updates committed.
    pub updates_applied: u64,
    /// Cache hits whose bytes disagreed with the store's digital
    /// front-end oracle (§5.4). The coherence protocol makes this
    /// impossible: it must be 0 under any interleaving.
    pub stale_serves: u64,
    /// Maintenance compaction passes that reclaimed anything.
    pub compactions: u64,
    /// Stale encoding units (patches, pointers, log entries, superseded
    /// bases) reclaimed by maintenance compaction.
    pub units_reclaimed: u64,
    /// Fresh base units re-synthesized by maintenance compaction.
    pub rewrites_synthesized: u64,
    /// Wetlab fast path: species that reached the full annealing model
    /// (process-global, from [`dna_sim::WetlabStats`]).
    pub wetlab_species_scanned: u64,
    /// Wetlab fast path: species the k-mer prefilter skipped.
    pub wetlab_species_skipped: u64,
    /// Wetlab fast path: per-pool binding-cache hits.
    pub wetlab_binding_cache_hits: u64,
    /// Wetlab fast path: full annealing-model evaluations.
    pub wetlab_anneal_calls: u64,
    /// Wetlab fast path: sequencer reads materialized.
    pub wetlab_reads_materialized: u64,
    /// Wetlab fast path: scratch/arena reuses (sequencer weight tables,
    /// decode arenas).
    pub wetlab_scratch_reuses: u64,
}

impl ServerStats {
    /// Every counter as a `(name, value)` pair, in declaration order — the
    /// introspection surface wire frontends and bench reporters serialize
    /// from, so adding a counter here automatically reaches every
    /// exporter (and the doctest below keeps the list in sync with the
    /// struct: it must name every public field exactly once).
    ///
    /// # Examples
    ///
    /// ```
    /// let stats = dna_block_store::ServerStats::default();
    /// let names: Vec<&str> = stats.fields().iter().map(|(n, _)| *n).collect();
    /// assert_eq!(names.len(), 18);
    /// assert!(names.contains(&"stale_serves"));
    /// assert!(names.contains(&"wetlab_species_skipped"));
    /// ```
    pub fn fields(&self) -> [(&'static str, u64); 18] {
        [
            ("requests", self.requests),
            ("reads_served", self.reads_served),
            ("cache_hits", self.cache_hits),
            ("cache_misses", self.cache_misses),
            ("batches_executed", self.batches_executed),
            ("rounds_executed", self.rounds_executed),
            ("reads_coalesced", self.reads_coalesced),
            ("updates_applied", self.updates_applied),
            ("stale_serves", self.stale_serves),
            ("compactions", self.compactions),
            ("units_reclaimed", self.units_reclaimed),
            ("rewrites_synthesized", self.rewrites_synthesized),
            ("wetlab_species_scanned", self.wetlab_species_scanned),
            ("wetlab_species_skipped", self.wetlab_species_skipped),
            ("wetlab_binding_cache_hits", self.wetlab_binding_cache_hits),
            ("wetlab_anneal_calls", self.wetlab_anneal_calls),
            ("wetlab_reads_materialized", self.wetlab_reads_materialized),
            ("wetlab_scratch_reuses", self.wetlab_scratch_reuses),
        ]
    }

    /// Looks one counter up by its [`ServerStats::fields`] name.
    pub fn field(&self, name: &str) -> Option<u64> {
        self.fields()
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }
}

/// The server's lock-free counter bank. `Relaxed` ordering throughout:
/// each counter is independently monotonic, and no control flow depends
/// on cross-counter ordering (the one exact invariant, `reads_served ==
/// cache_hits + cache_misses`, is derived at snapshot time).
#[derive(Default)]
struct AtomicStats {
    requests: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    batches_executed: AtomicU64,
    rounds_executed: AtomicU64,
    reads_coalesced: AtomicU64,
    updates_applied: AtomicU64,
    stale_serves: AtomicU64,
    compactions: AtomicU64,
    units_reclaimed: AtomicU64,
    rewrites_synthesized: AtomicU64,
}

impl AtomicStats {
    fn bump(counter: &AtomicU64, by: u64) {
        counter.fetch_add(by, Ordering::Relaxed);
    }

    fn snapshot(&self) -> ServerStats {
        let cache_hits = self.cache_hits.load(Ordering::Relaxed);
        let cache_misses = self.cache_misses.load(Ordering::Relaxed);
        // The simulator's fast-path counters are process-global (flushed
        // from thread-local banks at wetlab entry-point boundaries), so
        // the snapshot folds them in alongside the server's own atomics.
        let wetlab = dna_sim::stats::global_totals();
        ServerStats {
            requests: self.requests.load(Ordering::Relaxed),
            reads_served: cache_hits + cache_misses,
            cache_hits,
            cache_misses,
            batches_executed: self.batches_executed.load(Ordering::Relaxed),
            rounds_executed: self.rounds_executed.load(Ordering::Relaxed),
            reads_coalesced: self.reads_coalesced.load(Ordering::Relaxed),
            updates_applied: self.updates_applied.load(Ordering::Relaxed),
            stale_serves: self.stale_serves.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            units_reclaimed: self.units_reclaimed.load(Ordering::Relaxed),
            rewrites_synthesized: self.rewrites_synthesized.load(Ordering::Relaxed),
            wetlab_species_scanned: wetlab.species_scanned,
            wetlab_species_skipped: wetlab.species_skipped,
            wetlab_binding_cache_hits: wetlab.binding_cache_hits,
            wetlab_anneal_calls: wetlab.anneal_calls,
            wetlab_reads_materialized: wetlab.reads_materialized,
            wetlab_scratch_reuses: wetlab.scratch_reuses,
        }
    }
}

/// One served block read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServedRead {
    /// The block content, updates applied.
    pub block: Block,
    /// Whether the read was a cache hit (zero wetlab work).
    pub from_cache: bool,
    /// Update patches applied during decode (0 for cache hits — patches
    /// were already folded in when the cached copy was produced).
    pub patches_applied: usize,
}

/// What the staleness oracle remembers per block: the checksum of the
/// committed logical content and the shard epoch of the commit that
/// produced it. Epochs order front-end writes against each other without
/// a store-wide lock: a publication carrying an older epoch than the
/// entry's is a late-arriving loser of a commit race and is discarded.
#[derive(Debug, Clone, Copy)]
struct ShadowEntry {
    epoch: u64,
    checksum: u64,
}

/// Front-end state: the decoded-block cache and the staleness oracle,
/// both epoch-ordered. Per-shard coherence: entries for shard A are only
/// ever ordered against commits to shard A.
struct FrontEnd {
    cache: BlockCache,
    /// `(partition, block)` → the §5.4 digital front-end oracle entry that
    /// cache hits are audited against.
    shadow: BTreeMap<CacheKey, ShadowEntry>,
}

impl FrontEnd {
    /// Publishes a committed update (or write) for `key`: refreshes the
    /// oracle and applies the cache policy — unless a newer commit for the
    /// same key already published.
    fn publish_commit(&mut self, key: CacheKey, epoch: u64, image: &Block, policy: CachePolicy) {
        if self.shadow.get(&key).is_some_and(|e| e.epoch > epoch) {
            return; // a newer commit already published
        }
        self.shadow.insert(
            key,
            ShadowEntry {
                epoch,
                checksum: checksum64(&image.data),
            },
        );
        match policy {
            CachePolicy::Invalidate => {
                self.cache.invalidate(&key);
            }
            CachePolicy::Refresh => {
                self.cache.insert(key, image.clone());
            }
        }
    }

    /// Installs a wetlab-decoded block into the cache, unless an update
    /// newer than the read's shard snapshot has been published for the
    /// key (in which case the decoded image is already superseded).
    fn fill_cache(&mut self, key: CacheKey, snapshot_epoch: u64, image: &Block) {
        if self
            .shadow
            .get(&key)
            .is_some_and(|e| e.epoch > snapshot_epoch)
        {
            return;
        }
        self.cache.insert(key, image.clone());
    }

    /// Applies the cache policy to a compaction-rebased key. Compaction
    /// never changes logical bytes — the oracle checksum stays valid — but
    /// refresh/invalidate keeps cache behavior uniform with updates.
    fn publish_rebase(&mut self, key: CacheKey, epoch: u64, image: &Block, policy: CachePolicy) {
        match policy {
            CachePolicy::Invalidate => {
                self.cache.invalidate(&key);
            }
            CachePolicy::Refresh => {
                if self.shadow.get(&key).is_none_or(|e| e.epoch <= epoch) {
                    self.cache.insert(key, image.clone());
                }
            }
        }
    }
}

/// A read waiting for (or holding) its batch result.
type Ticket = u64;

/// A queued block read: its ticket, the client call it came from, and
/// its address. The call id distinguishes cross-request coalescing (two
/// calls sharing a round) from intra-call batching (one `read_range`
/// spanning several blocks).
struct PendingRead {
    ticket: Ticket,
    call: u64,
    pid: PartitionId,
    block: u64,
}

/// Scheduler state: the pending-read queue and published results.
struct SchedState {
    next_ticket: Ticket,
    /// Client calls that have queued reads (one id per `serve_reads` call).
    next_call: u64,
    /// Reads queued for the next coalesced batch.
    pending: Vec<PendingRead>,
    /// Results published by a leader, keyed by ticket; each waiter removes
    /// its own.
    results: BTreeMap<Ticket, Result<BlockReadOutcome, StoreError>>,
    /// Whether a leader is currently collecting (windowing) the queue.
    leader_active: bool,
    /// [`BatchWindow::Gate`] latch, consumed by the leader per release.
    gate_open: bool,
}

/// A thread-safe serving frontend over one sharded [`BlockStore`]:
/// concurrent `read_block` / `read_range` / `update_block` from any number
/// of client threads, with cross-request read coalescing and an
/// update-aware decoded-block cache.
///
/// Construct it around a store (pre-loaded or empty), share it via
/// [`std::sync::Arc`] (or `std::thread::scope` borrows), and drive it from
/// many threads.
///
/// # Examples
///
/// ```
/// use dna_block_store::service::{ServerConfig, StoreServer};
/// use dna_block_store::{BlockStore, PartitionConfig, BLOCK_SIZE};
///
/// let server = StoreServer::new(BlockStore::new(42), ServerConfig::paper_default());
/// let pid = server.create_partition(PartitionConfig::paper_default(7)).unwrap();
/// server.write_file(pid, &vec![7u8; BLOCK_SIZE]).unwrap();
///
/// let cold = server.read_block(pid, 0).unwrap();   // pays a wetlab round
/// let warm = server.read_block(pid, 0).unwrap();   // served from cache
/// assert!(!cold.from_cache);
/// assert!(warm.from_cache);
/// assert_eq!(warm.block, cold.block);
/// let stats = server.stats();
/// assert_eq!((stats.cache_hits, stats.cache_misses), (1, 1));
/// assert_eq!(stats.stale_serves, 0);
/// ```
pub struct StoreServer {
    store: BlockStore,
    // lock-rank: front
    front: RankedMutex<FrontEnd>,
    // lock-rank: sched
    sched: RankedMutex<SchedState>,
    stats: AtomicStats,
    /// Wakes a windowing leader (new arrival, or gate release).
    arrivals: Condvar,
    /// Wakes ticket holders when results are published.
    done: Condvar,
    config: ServerConfig,
}

impl StoreServer {
    /// Wraps `store` in a server. The staleness oracle is seeded from the
    /// store's current logical contents, so pre-loaded stores serve
    /// correctly from the first request.
    pub fn new(store: BlockStore, config: ServerConfig) -> StoreServer {
        let shadow = store
            .logical_contents()
            .into_iter()
            .map(|(key, block)| {
                (
                    key,
                    ShadowEntry {
                        // Pre-load epoch 0: every server-side commit gets a
                        // strictly positive epoch, so the first update of a
                        // pre-loaded key always supersedes this seed.
                        epoch: 0,
                        checksum: checksum64(&block.data),
                    },
                )
            })
            .collect();
        StoreServer {
            front: RankedMutex::new(
                LockRank::SERVICE_FRONT,
                "service-front",
                FrontEnd {
                    cache: BlockCache::new(config.cache_capacity),
                    shadow,
                },
            ),
            store,
            sched: RankedMutex::new(
                LockRank::SERVICE_SCHED,
                "service-sched",
                SchedState {
                    next_ticket: 0,
                    next_call: 0,
                    pending: Vec::new(),
                    results: BTreeMap::new(),
                    leader_active: false,
                    gate_open: false,
                },
            ),
            stats: AtomicStats::default(),
            arrivals: Condvar::new(),
            done: Condvar::new(),
            config,
        }
    }

    /// Opens (or creates) the durable store rooted at `dir` — recovering
    /// the pre-crash committed prefix, see
    /// [`open_or_recover_store`](crate::persist::open_or_recover_store) —
    /// and wraps it in a server. The staleness oracle seeds from the
    /// recovered logical contents exactly as [`StoreServer::new`] does, so
    /// a recovered server serves byte-identically from the first request.
    ///
    /// # Errors
    ///
    /// See [`open_or_recover_store`](crate::persist::open_or_recover_store).
    pub fn open_or_recover(
        dir: &std::path::Path,
        seed: u64,
        config: ServerConfig,
    ) -> Result<StoreServer, StoreError> {
        let store = crate::persist::open_or_recover_store(dir, seed)?;
        Ok(StoreServer::new(store, config))
    }

    /// Checkpoints the underlying store: writes a fresh snapshot image and
    /// resets the journal (see [`BlockStore::checkpoint`]). Safe to call
    /// concurrently with serving — the store takes its own locks; the
    /// server's cache and oracle are unaffected.
    ///
    /// # Errors
    ///
    /// See [`BlockStore::checkpoint`].
    pub fn checkpoint(&self) -> Result<(), StoreError> {
        self.store.checkpoint()
    }

    // ----- poison-recovering lock helpers ----------------------------------
    //
    // A client thread that panicks while holding a service lock poisons
    // it; recovering is safe because every critical section on these locks
    // is a sequence of individually consistent map/queue operations (no
    // multi-step invariant is ever left half-applied at a panic point —
    // the fallible store work happens outside the locks). The regression
    // test `poisoned_locks_recover` pins this.

    fn lock_front(&self) -> RankedMutexGuard<'_, FrontEnd> {
        self.front.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_sched(&self) -> RankedMutexGuard<'_, SchedState> {
        self.sched.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Unwraps the server, returning the inner store.
    pub fn into_store(self) -> BlockStore {
        self.store
    }

    /// Read-only access to the underlying sharded store (safe to use
    /// concurrently with serving: the store synchronizes internally).
    pub fn store(&self) -> &BlockStore {
        &self.store
    }

    /// A consistent snapshot of the cumulative serving statistics.
    pub fn stats(&self) -> ServerStats {
        self.stats.snapshot()
    }

    /// Blocks currently held by the decoded-block cache.
    pub fn cached_blocks(&self) -> usize {
        self.lock_front().cache.len()
    }

    /// Reads currently queued for the next coalesced batch (tests use this
    /// with [`BatchWindow::Gate`] to release a round deterministically).
    pub fn pending_reads(&self) -> usize {
        self.lock_sched().pending.len()
    }

    /// Opens the [`BatchWindow::Gate`]: the waiting leader (if any) drains
    /// everything pending and executes it as one batch. No-op latch in the
    /// other window modes.
    pub fn release_batch(&self) {
        let mut sched = self.lock_sched();
        sched.gate_open = true;
        drop(sched);
        self.arrivals.notify_all();
    }

    /// Creates a partition (the store serializes creation internally).
    ///
    /// # Errors
    ///
    /// Propagates [`BlockStore::create_partition`] errors.
    pub fn create_partition(&self, config: PartitionConfig) -> Result<PartitionId, StoreError> {
        self.store.create_partition(config)
    }

    /// Writes `data` as consecutive blocks starting at block 0 and seeds
    /// the staleness oracle for the written range.
    ///
    /// # Errors
    ///
    /// Propagates [`BlockStore::write_file`] errors.
    pub fn write_file(&self, pid: PartitionId, data: &[u8]) -> Result<u64, StoreError> {
        let written = self.store.write_file(pid, data)?;
        // Collect the committed images *before* taking the front lock: the
        // global order is store locks → front, so the front lock is never
        // held across a store call (`logical_versioned` takes directory +
        // shard locks). The per-key epochs keep publication race-correct.
        let seeded: Vec<(u64, (Block, u64))> = (0..written)
            .map(|block| {
                let versioned = self
                    .store
                    .logical_versioned(pid, block)
                    .expect("just written");
                (block, versioned)
            })
            .collect();
        let mut front = self.lock_front();
        for (block, (image, epoch)) in seeded {
            // Seed the oracle; the cache policy is irrelevant for a fresh
            // write (nothing cached yet), so publish with Invalidate.
            front.publish_commit((pid, block), epoch, &image, CachePolicy::Invalidate);
        }
        Ok(written)
    }

    /// Updates a block and keeps the cache coherent: the commit receipt's
    /// shard epoch orders the oracle/cache publication against every other
    /// publication for the same key, so a read issued after this call
    /// returns can never observe the pre-update image
    /// ([`ServerStats::stale_serves`] stays 0).
    ///
    /// # Errors
    ///
    /// Propagates [`BlockStore::update_block`] errors; on error the cache
    /// is untouched.
    pub fn update_block(
        &self,
        pid: PartitionId,
        block: u64,
        new_content: &[u8],
    ) -> Result<(), StoreError> {
        AtomicStats::bump(&self.stats.requests, 1);
        // Maintenance, first half: an update that would leave the block
        // under the configured headroom floor compacts its partition
        // *before* committing — so with `min_headroom >= 1`, exhaustion
        // from accumulated updates is unreachable on this path (a
        // partition with nothing to fold — e.g. packed solid with data —
        // still surfaces `UpdateSlotsExhausted`: that is under-provisioned
        // capacity, which no amount of folding can recover).
        if let Some(policy) = &self.config.compaction {
            // Only a valid update target can be starving: an unwritten
            // block also reports 0 headroom, but compacting for it would
            // pay real synthesis cost before the request fails anyway.
            let starving = policy.min_headroom > 0
                && self
                    .store
                    .partition(pid)
                    .is_ok_and(|p| p.writes_of(block) > 0)
                && self
                    .store
                    .update_headroom(pid, block)
                    .is_ok_and(|headroom| headroom < policy.min_headroom);
            if starving {
                let report = self.store.compact_partition(pid)?;
                self.apply_compaction(&report);
            }
        }
        let receipt = self.store.update_block_committed(pid, block, new_content)?;
        let mut front = self.lock_front();
        front.publish_commit(
            (pid, block),
            receipt.epoch,
            &receipt.image,
            self.config.cache_policy,
        );
        drop(front);
        AtomicStats::bump(&self.stats.updates_applied, 1);
        Ok(())
    }

    /// Reads one block: from the cache when warm (zero wetlab work),
    /// otherwise queued into the batching window and served by a coalesced
    /// multiplex round.
    ///
    /// # Errors
    ///
    /// Propagates per-block read errors ([`StoreError::DecodeFailed`],
    /// range and unknown-partition errors). A failing request never
    /// poisons reads coalesced into the same round.
    pub fn read_block(&self, pid: PartitionId, block: u64) -> Result<ServedRead, StoreError> {
        self.serve_reads(&[(pid, block)])
            .pop()
            .expect("one result per request")
    }

    /// Reads a contiguous block range. Cached blocks are served from the
    /// cache; the misses ride one coalesced batch (together with any other
    /// pending reads).
    ///
    /// # Errors
    ///
    /// Fails on the first per-block error in the range.
    pub fn read_range(
        &self,
        pid: PartitionId,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<ServedRead>, StoreError> {
        let wants: Vec<(PartitionId, u64)> = (lo..=hi).map(|b| (pid, b)).collect();
        self.serve_reads(&wants).into_iter().collect()
    }

    /// The shared read path: cache lookups, then ticketed scheduling for
    /// the misses. Returns one result per requested block, in request
    /// order.
    fn serve_reads(&self, wants: &[(PartitionId, u64)]) -> Vec<Result<ServedRead, StoreError>> {
        AtomicStats::bump(&self.stats.requests, 1);
        let mut results: Vec<Option<Result<ServedRead, StoreError>>> = vec![None; wants.len()];
        let mut misses: Vec<(usize, PartitionId, u64)> = Vec::new();
        {
            let mut front = self.lock_front();
            for (i, &(pid, block)) in wants.iter().enumerate() {
                if let Some(cached) = front.cache.get(&(pid, block)) {
                    let served = ServedRead {
                        block: cached.clone(),
                        from_cache: true,
                        patches_applied: 0,
                    };
                    AtomicStats::bump(&self.stats.cache_hits, 1);
                    // Audit against the §5.4 oracle: a coherent cache can
                    // never disagree with the committed logical content.
                    let fresh = front.shadow.get(&(pid, block)).map(|e| e.checksum);
                    if fresh != Some(checksum64(&served.block.data)) {
                        AtomicStats::bump(&self.stats.stale_serves, 1);
                    }
                    results[i] = Some(Ok(served));
                } else {
                    AtomicStats::bump(&self.stats.cache_misses, 1);
                    misses.push((i, pid, block));
                }
            }
        }
        if !misses.is_empty() {
            // Queue tickets; the first queued miss elects this thread
            // leader of the next batch.
            let mut tickets: Vec<(Ticket, usize)> = Vec::with_capacity(misses.len());
            let lead = {
                let mut sched = self.lock_sched();
                let call = sched.next_call;
                sched.next_call += 1;
                for &(slot, pid, block) in &misses {
                    let ticket = sched.next_ticket;
                    sched.next_ticket += 1;
                    sched.pending.push(PendingRead {
                        ticket,
                        call,
                        pid,
                        block,
                    });
                    tickets.push((ticket, slot));
                }
                let lead = !sched.leader_active;
                sched.leader_active = true;
                lead
            };
            // Wake a windowing leader so an early `max_batch` trigger can
            // fire.
            self.arrivals.notify_all();
            if lead {
                self.lead_batch();
            }
            // Collect this call's tickets (the leader published its own
            // along with everyone else's).
            let mut sched = self.lock_sched();
            loop {
                let mut missing = false;
                for &(ticket, slot) in &tickets {
                    if results[slot].is_none() {
                        match sched.results.remove(&ticket) {
                            Some(outcome) => {
                                results[slot] = Some(outcome.map(|o| ServedRead {
                                    block: o.block,
                                    from_cache: false,
                                    patches_applied: o.patches_applied,
                                }));
                            }
                            None => missing = true,
                        }
                    }
                }
                if !missing {
                    break;
                }
                sched = sched
                    .wait_on(&self.done)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every request resolved"))
            .collect()
    }

    /// Runs one policy-driven compaction pass immediately — the same pass
    /// the serving loop runs between coalesced batches — and returns its
    /// report. Uses the configured policy, or
    /// [`CompactionPolicy::paper_default`] when the server was built
    /// without one (manual maintenance on an otherwise unmanaged store).
    ///
    /// # Errors
    ///
    /// Propagates [`BlockStore::compact_partition`] /
    /// [`BlockStore::compact_log`] errors.
    pub fn run_maintenance(&self) -> Result<CompactionReport, StoreError> {
        let policy = self
            .config
            .compaction
            .unwrap_or_else(CompactionPolicy::paper_default);
        let report = Compactor::new(policy).run(&self.store)?;
        self.apply_compaction(&report);
        Ok(report)
    }

    /// Publishes a compaction's effects to the front end: bumps the
    /// compaction counters and applies the configured [`CachePolicy`] to
    /// every rebased block. Compaction never changes logical bytes —
    /// cached entries stay *correct* and the staleness oracle needs no
    /// adjustment — but refresh/invalidate keeps cache behavior uniform
    /// with updates. Rebased images are re-read with their shard epoch so
    /// a refresh racing a concurrent update can never resurrect a
    /// pre-update image.
    fn apply_compaction(&self, report: &CompactionReport) {
        if report.is_empty() {
            return;
        }
        AtomicStats::bump(&self.stats.compactions, 1);
        AtomicStats::bump(&self.stats.units_reclaimed, report.units_reclaimed);
        AtomicStats::bump(
            &self.stats.rewrites_synthesized,
            report.rewrites_synthesized,
        );
        // Re-read every rebased image *before* taking the front lock (the
        // global order is store locks → front; `logical_versioned` takes
        // directory + shard locks). Each image carries its shard epoch, so
        // publication stays ordered against concurrent updates.
        let rebased: Vec<((PartitionId, u64), (Block, u64))> = report
            .rebased
            .iter()
            .filter_map(|&(pid, block)| {
                self.store
                    .logical_versioned(pid, block)
                    .map(|versioned| ((pid, block), versioned))
            })
            .collect();
        let mut front = self.lock_front();
        for (key, (image, epoch)) in rebased {
            front.publish_rebase(key, epoch, &image, self.config.cache_policy);
        }
    }

    /// Leader duty: wait out the batching window, drain the queue, execute
    /// the batch against the sharded store (no service lock held), install
    /// fresh blocks into the cache epoch-guarded, and publish per-ticket
    /// results. If the leader panicks after draining, its drop guard
    /// publishes [`StoreError::ServerPanicked`] to every drained ticket so
    /// followers never hang.
    fn lead_batch(&self) {
        let mut sched = self.lock_sched();
        match self.config.window {
            BatchWindow::Immediate => {}
            BatchWindow::Window(window) => {
                // lint: allow(determinism): batching-window deadline only — bounds the coalescing wait, never reaches commit/epoch state
                let deadline = Instant::now() + window;
                loop {
                    // `saturating_duration_since` clamps a passed deadline
                    // to zero, which `window_poll` maps to `Execute` — the
                    // leader can neither wait past its deadline nor feed a
                    // negative remainder into the condvar.
                    // lint: allow(determinism): batching-window deadline only — bounds the coalescing wait, never reaches commit/epoch state
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    match window_poll(remaining, sched.pending.len(), self.config.max_batch) {
                        WindowPoll::Execute => break,
                        WindowPoll::Wait(wait) => {
                            let (guard, _) = sched
                                .wait_timeout_on(&self.arrivals, wait)
                                .unwrap_or_else(PoisonError::into_inner);
                            sched = guard;
                        }
                    }
                }
            }
            BatchWindow::Gate => {
                while !sched.gate_open {
                    sched = sched
                        .wait_on(&self.arrivals)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                sched.gate_open = false;
            }
        }
        let batch = std::mem::take(&mut sched.pending);
        // Handing leadership back in the same critical section as the
        // drain guarantees every queued read is owned by exactly one
        // leader.
        sched.leader_active = false;
        drop(sched);
        if batch.is_empty() {
            return;
        }
        // From here on this thread owes every drained ticket a result —
        // even if the store panicks under it.
        let guard = TicketGuard {
            server: self,
            tickets: batch.iter().map(|read| read.ticket).collect(),
        };

        let requests: Vec<(PartitionId, u64)> =
            batch.iter().map(|read| (read.pid, read.block)).collect();
        // Reads from a call other than the leader's shared a round-trip
        // they would not have had alone — that is the cross-request
        // amortization `reads_coalesced` measures (a multi-block
        // `read_range` batching with itself does not count).
        let leader_call = batch[0].call;
        // lossless: usize → u64 widens on every supported target.
        let mut piggybacked = batch.iter().filter(|r| r.call != leader_call).count() as u64;
        let mut rounds = 0u64;
        let published: Vec<(Ticket, Result<BlockReadOutcome, StoreError>)> = match self
            .store
            .read_blocks_batch_planned(&requests, &self.config.planner)
        {
            Ok(executed) => {
                // lossless: usize → u64 widens on every supported target.
                rounds += executed.stats.rounds as u64;
                let mut front = self.lock_front();
                batch
                    .iter()
                    .zip(executed.outcomes)
                    .map(|(read, outcome)| {
                        if let Ok(ok) = &outcome {
                            // Epoch-guarded: the fill is dropped if an
                            // update newer than the read's shard snapshot
                            // has already published for this key.
                            let epoch = executed
                                .shard_epochs
                                .get(&read.pid)
                                .copied()
                                .unwrap_or_default();
                            front.fill_cache((read.pid, read.block), epoch, &ok.block);
                        }
                        (read.ticket, outcome)
                    })
                    .collect()
            }
            // A whole-batch error (unknown partition) must not poison
            // innocent coalesced requests: fall back to per-request
            // execution so each ticket gets its own verdict. Rounds
            // are counted whether or not the block decodes — and since
            // every request now pays its own round, nothing actually
            // coalesced.
            Err(_) => {
                piggybacked = 0;
                batch
                    .iter()
                    .map(|read| {
                        let key = (read.pid, read.block);
                        let outcome = match self
                            .store
                            .read_blocks_batch_planned(&[key], &self.config.planner)
                        {
                            Ok(mut one) => {
                                // lossless: usize → u64 widens on every supported target.
                                rounds += one.stats.rounds as u64;
                                let epoch =
                                    one.shard_epochs.get(&read.pid).copied().unwrap_or_default();
                                one.outcomes.pop().expect("one outcome").inspect(|ok| {
                                    self.lock_front().fill_cache(key, epoch, &ok.block);
                                })
                            }
                            Err(e) => Err(e),
                        };
                        (read.ticket, outcome)
                    })
                    .collect()
            }
        };
        // One logical coalesced batch regardless of execution path.
        AtomicStats::bump(&self.stats.batches_executed, 1);
        AtomicStats::bump(&self.stats.rounds_executed, rounds);
        AtomicStats::bump(&self.stats.reads_coalesced, piggybacked);
        // Maintenance, second half: between coalesced batches, fold
        // whatever crossed the policy's thresholds. Compaction re-encodes
        // every rewrite before retiring anything and commits per shard
        // under the shard's own lock, so an error here simply skips the
        // pass.
        if let Some(policy) = &self.config.compaction {
            if let Ok(report) = Compactor::new(*policy).run(&self.store) {
                self.apply_compaction(&report);
            }
        }
        guard.publish(published);
    }
}

/// Owes the drained tickets a published result. Normal path:
/// [`TicketGuard::publish`] hands every ticket its real outcome. Unwind
/// path (the leader panicked executing the batch): `Drop` publishes
/// [`StoreError::ServerPanicked`] to all of them, so followers error out
/// instead of waiting forever — and the panic stays contained to the
/// leader's own request.
struct TicketGuard<'a> {
    server: &'a StoreServer,
    tickets: Vec<Ticket>,
}

impl TicketGuard<'_> {
    fn publish(mut self, results: Vec<(Ticket, Result<BlockReadOutcome, StoreError>)>) {
        let mut sched = self.server.lock_sched();
        sched.results.extend(results);
        drop(sched);
        self.tickets.clear();
        self.server.done.notify_all();
    }
}

impl Drop for TicketGuard<'_> {
    fn drop(&mut self) {
        if self.tickets.is_empty() {
            return;
        }
        let mut sched = self.server.lock_sched();
        for &ticket in &self.tickets {
            sched
                .results
                .entry(ticket)
                .or_insert(Err(StoreError::ServerPanicked));
        }
        drop(sched);
        self.server.done.notify_all();
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BLOCK_SIZE;
    use crate::workload::deterministic_text;

    fn immediate_config(cache_capacity: usize) -> ServerConfig {
        ServerConfig {
            cache_capacity,
            window: BatchWindow::Immediate,
            ..ServerConfig::paper_default()
        }
    }

    fn server_with_blocks(
        seed: u64,
        blocks: usize,
        config: ServerConfig,
    ) -> (StoreServer, PartitionId, Vec<u8>) {
        let server = StoreServer::new(BlockStore::new(seed), config);
        let pid = server
            .create_partition(PartitionConfig::paper_default(seed ^ 0x51))
            .unwrap();
        let data = deterministic_text(blocks * BLOCK_SIZE, seed ^ 0x52);
        server.write_file(pid, &data).unwrap();
        (server, pid, data)
    }

    #[test]
    fn warm_cache_reread_executes_zero_wetlab_rounds() {
        let (server, pid, data) = server_with_blocks(300, 2, immediate_config(8));
        let cold = server.read_block(pid, 0).unwrap();
        assert!(!cold.from_cache);
        assert_eq!(cold.block.data, &data[..BLOCK_SIZE]);
        let rounds_after_cold = server.stats().rounds_executed;
        assert!(rounds_after_cold > 0);

        let warm = server.read_block(pid, 0).unwrap();
        assert!(warm.from_cache);
        assert_eq!(warm.block, cold.block);
        let stats = server.stats();
        assert_eq!(
            stats.rounds_executed, rounds_after_cold,
            "warm re-read must execute 0 wetlab rounds"
        );
        assert_eq!((stats.cache_hits, stats.cache_misses), (1, 1));
        assert_eq!(stats.stale_serves, 0);
        assert_eq!(stats.reads_served, stats.cache_hits + stats.cache_misses);
    }

    #[test]
    fn update_invalidates_cached_block() {
        let (server, pid, mut data) = server_with_blocks(301, 2, immediate_config(8));
        let before = server.read_block(pid, 0).unwrap();
        assert_eq!(before.block.data, &data[..BLOCK_SIZE]);
        assert!(server.read_block(pid, 0).unwrap().from_cache);

        data[10..14].copy_from_slice(b"EDIT");
        server.update_block(pid, 0, &data[..BLOCK_SIZE]).unwrap();
        let after = server.read_block(pid, 0).unwrap();
        assert!(!after.from_cache, "invalidate policy forces a re-read");
        assert_eq!(after.block.data, &data[..BLOCK_SIZE]);
        assert_eq!(after.patches_applied, 1);
        // And the re-read repopulated the cache with the new image.
        let warm = server.read_block(pid, 0).unwrap();
        assert!(warm.from_cache);
        assert_eq!(warm.block.data, &data[..BLOCK_SIZE]);
        assert_eq!(server.stats().stale_serves, 0);
    }

    #[test]
    fn refresh_policy_serves_post_update_image_from_cache() {
        let config = ServerConfig {
            cache_policy: CachePolicy::Refresh,
            ..immediate_config(8)
        };
        let (server, pid, mut data) = server_with_blocks(302, 1, config);
        server.read_block(pid, 0).unwrap();
        let rounds_before = server.stats().rounds_executed;
        data[0..4].copy_from_slice(b"NEW!");
        server.update_block(pid, 0, &data).unwrap();
        let read = server.read_block(pid, 0).unwrap();
        assert!(read.from_cache, "refresh keeps the cache warm");
        assert_eq!(read.block.data, data);
        assert_eq!(
            server.stats().rounds_executed,
            rounds_before,
            "refreshed hit costs no wetlab round"
        );
        assert_eq!(server.stats().stale_serves, 0);
    }

    #[test]
    fn read_range_mixes_cache_hits_and_wetlab_misses() {
        let (server, pid, data) = server_with_blocks(303, 3, immediate_config(8));
        assert!(!server.read_block(pid, 1).unwrap().from_cache);
        let range = server.read_range(pid, 0, 2).unwrap();
        assert_eq!(range.len(), 3);
        for (b, read) in range.iter().enumerate() {
            assert_eq!(
                read.block.data,
                &data[b * BLOCK_SIZE..(b + 1) * BLOCK_SIZE],
                "range block {b}"
            );
        }
        assert!(!range[0].from_cache);
        assert!(range[1].from_cache, "block 1 was already decoded");
        assert!(!range[2].from_cache);
        let stats = server.stats();
        assert_eq!(stats.reads_served, 4);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 3);
    }

    #[test]
    fn gate_window_coalesces_concurrent_reads_into_one_batch() {
        let config = ServerConfig {
            window: BatchWindow::Gate,
            ..immediate_config(8)
        };
        let (server, pid, data) = server_with_blocks(304, 3, config);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..3u64)
                .map(|b| {
                    let server = &server;
                    scope.spawn(move || server.read_block(pid, b).unwrap())
                })
                .collect();
            // Deterministic: wait until all three reads are queued, then
            // release them as one batch.
            while server.pending_reads() < 3 {
                std::thread::yield_now();
            }
            server.release_batch();
            for (b, handle) in handles.into_iter().enumerate() {
                let read = handle.join().unwrap();
                assert_eq!(
                    read.block.data,
                    &data[b * BLOCK_SIZE..(b + 1) * BLOCK_SIZE],
                    "thread {b}"
                );
            }
        });
        let stats = server.stats();
        assert_eq!(stats.batches_executed, 1, "one coalesced batch");
        assert_eq!(stats.rounds_executed, 1, "one partition, one tube");
        assert_eq!(
            stats.reads_coalesced, 2,
            "two reads rode the leader's round"
        );
    }

    #[test]
    fn bad_request_does_not_poison_coalesced_neighbors() {
        let config = ServerConfig {
            window: BatchWindow::Gate,
            ..immediate_config(8)
        };
        let (server, pid, data) = server_with_blocks(305, 1, config);
        std::thread::scope(|scope| {
            let good = scope.spawn(|| server.read_block(pid, 0));
            let bad = scope.spawn(|| server.read_block(PartitionId(99), 0));
            while server.pending_reads() < 2 {
                std::thread::yield_now();
            }
            server.release_batch();
            let good = good.join().unwrap().expect("good read survives");
            assert_eq!(good.block.data, &data[..BLOCK_SIZE]);
            assert!(matches!(
                bad.join().unwrap(),
                Err(StoreError::UnknownPartition(99))
            ));
        });
        let stats = server.stats();
        assert_eq!(stats.stale_serves, 0);
        // The fallback executed each request in its own round, so no read
        // actually shared another call's round-trip.
        assert_eq!(stats.reads_coalesced, 0);
        assert_eq!(stats.batches_executed, 1, "one logical coalesced batch");
    }

    #[test]
    fn update_path_compacts_before_exhaustion() {
        // A nearly-full Interleaved partition: 52 data blocks in 64 leaves
        // leave 12 overflow leaves, so ~38 updates of one block exhaust
        // it. With a headroom policy the server compacts just-in-time and
        // the same workload keeps going well past that bound.
        use crate::compaction::CompactionPolicy;
        use crate::UpdateLayout;
        let config = ServerConfig {
            compaction: Some(CompactionPolicy::headroom_only(2)),
            ..immediate_config(8)
        };
        let server = StoreServer::new(BlockStore::new(310), config);
        let pid = server
            .create_partition(PartitionConfig::small(
                0x61,
                3,
                UpdateLayout::paper_default(),
            ))
            .unwrap();
        let mut data = deterministic_text(52 * BLOCK_SIZE, 0x62);
        server.write_file(pid, &data).unwrap();
        // 45 updates: past the 38-update exhaustion bound, with a few
        // post-compaction patches left to read back through the wetlab.
        for round in 0..45u8 {
            data[usize::from(round % 8)] = b'a' + (round % 26);
            server
                .update_block(pid, 0, &data[..BLOCK_SIZE])
                .unwrap_or_else(|e| panic!("update {round}: {e}"));
        }
        let stats = server.stats();
        assert!(stats.compactions >= 1, "{stats:?}");
        assert!(stats.units_reclaimed > 0);
        assert!(stats.rewrites_synthesized >= 1);
        assert_eq!(stats.updates_applied, 45);
        let read = server.read_block(pid, 0).unwrap();
        assert_eq!(read.block.data, &data[..BLOCK_SIZE]);
        assert_eq!(server.stats().stale_serves, 0);
    }

    #[test]
    fn batch_maintenance_folds_hot_chains_and_keeps_cache_coherent() {
        use crate::compaction::CompactionPolicy;
        use crate::UpdateLayout;
        let policy = CompactionPolicy {
            max_chain_len: 1,
            max_stack_updates: 0,
            max_log_entries: 0,
            max_scope_units: 0,
            min_headroom: 0,
        };
        let config = ServerConfig {
            compaction: Some(policy),
            ..immediate_config(8)
        };
        let server = StoreServer::new(BlockStore::new(311), config);
        let pid = server
            .create_partition(PartitionConfig::small(
                0x63,
                3,
                UpdateLayout::paper_default(),
            ))
            .unwrap();
        let mut data = deterministic_text(2 * BLOCK_SIZE, 0x64);
        server.write_file(pid, &data).unwrap();
        // 4 updates: 2 direct slots + a chain leaf → over max_chain_len 1.
        for i in 0..4u8 {
            data[usize::from(i)] = b'A' + i;
            server.update_block(pid, 0, &data[..BLOCK_SIZE]).unwrap();
        }
        assert_eq!(server.stats().compactions, 0, "no batch has run yet");
        // This miss executes a batch; the maintenance pass after it folds
        // the chain — and (Invalidate policy) drops the rebased key that
        // the batch had just cached.
        let read = server.read_block(pid, 0).unwrap();
        assert!(!read.from_cache);
        assert_eq!(read.block.data, &data[..BLOCK_SIZE]);
        assert_eq!(read.patches_applied, 4, "read preceded the fold");
        let stats = server.stats();
        assert_eq!(stats.compactions, 1, "{stats:?}");
        assert!(stats.units_reclaimed >= 6, "{stats:?}");
        // The invalidated key re-reads cold — now from the rebased base
        // unit, zero patches — then stays warm.
        let rebased = server.read_block(pid, 0).unwrap();
        assert!(!rebased.from_cache, "compaction invalidated the key");
        assert_eq!(rebased.block.data, &data[..BLOCK_SIZE]);
        assert_eq!(rebased.patches_applied, 0);
        let warm = server.read_block(pid, 0).unwrap();
        assert!(warm.from_cache);
        assert_eq!(warm.block.data, &data[..BLOCK_SIZE]);
        assert_eq!(server.stats().stale_serves, 0);
    }

    #[test]
    fn run_maintenance_reports_reclaims_on_demand() {
        use crate::UpdateLayout;
        // No policy configured: manual maintenance uses the paper default.
        let (server, _, _) = server_with_blocks(312, 1, immediate_config(8));
        let pid = server
            .create_partition(PartitionConfig::small(0x65, 3, UpdateLayout::TwoStacks))
            .unwrap();
        let mut data = deterministic_text(BLOCK_SIZE, 0x66);
        server.write_file(pid, &data).unwrap();
        for i in 0..3u8 {
            data[usize::from(i)] = b'0' + i;
            server.update_block(pid, 0, &data).unwrap();
        }
        // Below every threshold: nothing to do.
        assert!(server.run_maintenance().unwrap().is_empty());
        for i in 3..12u8 {
            data[usize::from(i % 8)] = b'0' + i;
            server.update_block(pid, 0, &data).unwrap();
        }
        // 12 stacked updates → projected scope 13 ≥ the default 12.
        let report = server.run_maintenance().unwrap();
        assert_eq!(report.blocks_rebased, 1);
        assert_eq!(report.units_reclaimed, 13, "12 patches + 1 old base");
        let read = server.read_block(pid, 0).unwrap();
        assert_eq!(read.block.data, data);
        assert_eq!(read.patches_applied, 0);
    }

    #[test]
    fn stats_account_requests_and_updates() {
        let (server, pid, data) = server_with_blocks(306, 2, immediate_config(0));
        // Cache disabled: every read is a miss and nothing is ever cached.
        server.read_block(pid, 0).unwrap();
        server.read_block(pid, 0).unwrap();
        server.update_block(pid, 1, &data[BLOCK_SIZE..]).unwrap();
        let stats = server.stats();
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.reads_served, 2);
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.cache_misses, 2);
        assert_eq!(stats.updates_applied, 1);
        assert_eq!(server.cached_blocks(), 0);
        let store = server.into_store();
        assert_eq!(
            store.logical_block(pid, 1).unwrap().data,
            &data[BLOCK_SIZE..]
        );
    }

    #[test]
    fn poisoned_locks_recover_and_serve() {
        // Regression for the lock-poisoning fragility: a client thread
        // that panicks while holding a service lock must not brick the
        // server. Poison both service locks from a doomed thread, then
        // verify every serving path still works.
        let (server, pid, data) = server_with_blocks(313, 2, immediate_config(8));
        server.read_block(pid, 0).unwrap(); // warm one key
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let handle = scope.spawn(|| {
                    // lint: allow(lock-unwrap): this doomed thread deliberately panics while holding the lock to poison it
                    let _front = server.front.lock().unwrap();
                    panic!("poison the front lock");
                });
                assert!(handle.join().is_err());
                let handle = scope.spawn(|| {
                    // lint: allow(lock-unwrap): this doomed thread deliberately panics while holding the lock to poison it
                    let _sched = server.sched.lock().unwrap();
                    panic!("poison the sched lock");
                });
                assert!(handle.join().is_err());
            }
        });
        assert!(server.front.is_poisoned());
        assert!(server.sched.is_poisoned());
        // Every path recovers: warm hit, cold miss, update, stats.
        let warm = server.read_block(pid, 0).unwrap();
        assert!(warm.from_cache);
        assert_eq!(warm.block.data, &data[..BLOCK_SIZE]);
        let cold = server.read_block(pid, 1).unwrap();
        assert_eq!(cold.block.data, &data[BLOCK_SIZE..]);
        let mut edited = data[..BLOCK_SIZE].to_vec();
        edited[0] ^= 0xFF;
        server.update_block(pid, 0, &edited).unwrap();
        let after = server.read_block(pid, 0).unwrap();
        assert_eq!(after.block.data, edited);
        let stats = server.stats();
        assert_eq!(stats.stale_serves, 0);
        assert_eq!(stats.reads_served, stats.cache_hits + stats.cache_misses);
    }

    #[test]
    fn panicking_leader_fails_its_tickets_without_hanging_followers() {
        // The TicketGuard containment story: if the leader dies after
        // draining the queue, every drained ticket gets ServerPanicked
        // instead of hanging forever. Simulate the drained state directly:
        // queue tickets, steal them like a crashing leader would, and let
        // the guard's drop path publish.
        let (server, pid, _) = server_with_blocks(314, 1, immediate_config(8));
        let t = std::thread::scope(|scope| {
            let reader = scope.spawn(|| server.read_block(pid, 0));
            // The reader elects itself leader and executes normally; a
            // second reader coalesced behind a leader that panicks is
            // exercised via the guard directly:
            reader.join().unwrap()
        });
        t.unwrap();
        // Drive the guard's unwind path explicitly.
        let ticket = {
            let mut sched = server.lock_sched();
            let ticket = sched.next_ticket;
            sched.next_ticket += 1;
            ticket
        };
        let guard = TicketGuard {
            server: &server,
            tickets: vec![ticket],
        };
        drop(guard); // unwind path: publishes ServerPanicked
        let mut sched = server.lock_sched();
        assert!(matches!(
            sched.results.remove(&ticket),
            Some(Err(StoreError::ServerPanicked))
        ));
    }

    #[test]
    fn window_poll_never_releases_early_on_spurious_wakeups() {
        // A spurious wakeup changes neither the pending count nor the
        // deadline: the decision must be to park again for exactly the
        // remaining window — never Execute, never a zero wait (busy-spin).
        let window = Duration::from_millis(2);
        let mut remaining = window;
        let mut parks = 0;
        // Model a storm of spurious wakeups, each consuming some of the
        // window: the decision sequence must be monotone Waits (shrinking
        // with the clock) followed by exactly one Execute at zero.
        while remaining > Duration::ZERO {
            match window_poll(remaining, 1, 64) {
                WindowPoll::Execute => panic!("released a 1-read batch before the deadline"),
                WindowPoll::Wait(wait) => {
                    assert_eq!(wait, remaining, "leader must park for the full remainder");
                    parks += 1;
                }
            }
            remaining = remaining.saturating_sub(Duration::from_nanos(200_000));
        }
        assert_eq!(parks, 10);
        assert_eq!(
            window_poll(Duration::ZERO, 1, 64),
            WindowPoll::Execute,
            "a reached deadline releases the batch no matter how the wakeup happened"
        );
    }

    #[test]
    fn window_poll_early_trigger_and_unbounded_batch() {
        // max_batch reached → execute even with the whole window left.
        assert_eq!(
            window_poll(Duration::from_secs(60), 64, 64),
            WindowPoll::Execute
        );
        assert_eq!(
            window_poll(Duration::from_secs(60), 65, 64),
            WindowPoll::Execute
        );
        // max_batch == 0 disables the early trigger entirely.
        assert_eq!(
            window_poll(Duration::from_secs(60), 1_000_000, 0),
            WindowPoll::Wait(Duration::from_secs(60))
        );
    }

    #[test]
    fn window_leader_survives_a_spurious_wakeup_storm() {
        // End-to-end audit of the Window leader loop: with a 60 s window
        // and max_batch = 2, a leader holding one read is stormed with
        // spurious arrivals-condvar wakeups. It must keep windowing (no
        // premature 1-read batch), then release promptly — long before the
        // deadline — once a second read fills the batch.
        let config = ServerConfig {
            window: BatchWindow::Window(Duration::from_secs(60)),
            max_batch: 2,
            ..immediate_config(8)
        };
        let (server, pid, data) = server_with_blocks(315, 2, config);
        std::thread::scope(|scope| {
            let server = &server;
            let leader = scope.spawn(move || server.read_block(pid, 0).unwrap());
            // Wait until the leader has queued its read and begun windowing.
            loop {
                let sched = server.lock_sched();
                if sched.leader_active && sched.pending.len() == 1 {
                    break;
                }
                drop(sched);
                std::thread::yield_now();
            }
            // Spurious storm: wake the leader repeatedly with nothing new.
            for _ in 0..64 {
                server.arrivals.notify_all();
                std::thread::yield_now();
            }
            assert_eq!(
                server.stats().batches_executed,
                0,
                "spurious wakeups must not release the batch before the deadline"
            );
            // The second read reaches max_batch: both must now complete
            // promptly (the test would time out on a 60 s deadline wait).
            let follower = scope.spawn(move || server.read_block(pid, 1).unwrap());
            let a = leader.join().unwrap();
            let b = follower.join().unwrap();
            assert_eq!(a.block.data, &data[..BLOCK_SIZE]);
            assert_eq!(b.block.data, &data[BLOCK_SIZE..]);
        });
        let stats = server.stats();
        assert_eq!(stats.batches_executed, 1, "one coalesced batch, not two");
        assert_eq!(stats.reads_coalesced, 1, "the follower shared the round");
        assert_eq!(stats.stale_serves, 0);
    }

    #[test]
    fn stats_fields_cover_every_counter() {
        let stats = ServerStats {
            requests: 1,
            reads_served: 5,
            cache_hits: 2,
            cache_misses: 3,
            batches_executed: 4,
            rounds_executed: 5,
            reads_coalesced: 6,
            updates_applied: 7,
            stale_serves: 8,
            compactions: 9,
            units_reclaimed: 10,
            rewrites_synthesized: 11,
            wetlab_species_scanned: 12,
            wetlab_species_skipped: 13,
            wetlab_binding_cache_hits: 14,
            wetlab_anneal_calls: 15,
            wetlab_reads_materialized: 16,
            wetlab_scratch_reuses: 17,
        };
        let fields = stats.fields();
        assert_eq!(fields.len(), 18);
        // Every name unique, every value the struct's own.
        let names: std::collections::BTreeSet<&str> = fields.iter().map(|&(n, _)| n).collect();
        assert_eq!(names.len(), fields.len());
        assert_eq!(stats.field("reads_served"), Some(5));
        assert_eq!(stats.field("stale_serves"), Some(8));
        assert_eq!(stats.field("wetlab_species_skipped"), Some(13));
        assert_eq!(stats.field("nonsense"), None);
    }
}
