//! Multiplexed batch retrieval planning.
//!
//! The paper's central cost argument (§7) is that wetlab work amortizes:
//! one PCR reaction can amplify *many* primer-addressed targets at once
//! (multiplexed primer pools, as in Yazdi et al.'s random-access system),
//! so the per-block cost of a batched access falls with the batch size
//! instead of staying flat. The [`BatchPlanner`] is the piece that decides
//! *which* targets may share a tube: primer pairs from different partitions
//! can only be multiplexed when they are chemically compatible —
//! no cross-dimers and a shared melting-temperature window
//! ([`dna_primers::MultiplexCompat`]).
//!
//! The planner consumes one [`PlanItem`] per partition touched by a batch
//! (a partition under the DedicatedLog layout also drags the shared log
//! partition's primer pair into its item, because its patches live there)
//! and greedily packs items into the fewest *multiplex rounds* such that
//! every primer pair in a round is pairwise compatible with every other.
//! Each round then becomes one [`dna_sim::MultiplexPcrReaction`] + one
//! sequencing run, demultiplexed in software and decoded in parallel
//! (see [`crate::BlockStore::read_blocks_batch`]).
//!
//! Greedy first-fit is the right tool here: optimal compatibility grouping
//! is graph coloring (NP-hard), batches are small (tens of partitions), and
//! first-fit is deterministic — the same requests always produce the same
//! rounds, which the reproducibility guarantees of the store require.

use dna_primers::{MultiplexCompat, PrimerPair};

/// One schedulable unit of a batch: a partition (identified by `id`) plus
/// every primer pair that must be present in the tube to serve it.
#[derive(Debug, Clone)]
pub struct PlanItem {
    /// Caller-chosen identifier (the store uses the partition index).
    pub id: usize,
    /// Primer pairs this item brings to the tube. The first is the
    /// partition's own pair; a DedicatedLog partition appends the shared
    /// log partition's pair.
    pub pairs: Vec<PrimerPair>,
}

/// One multiplex PCR round: the item ids sharing the tube.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedRound {
    /// Ids of the [`PlanItem`]s packed into this round.
    pub items: Vec<usize>,
}

/// The full schedule for a batch.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BatchPlan {
    /// Rounds in execution order.
    pub rounds: Vec<PlannedRound>,
}

impl BatchPlan {
    /// Number of PCR + sequencing round-trips the plan needs.
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }
}

/// Groups batch requests into multiplex PCR rounds subject to
/// primer-compatibility constraints.
///
/// See the [module docs](self) for the chemistry and the algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPlanner {
    /// The compatibility rules primer pairs must satisfy to share a tube.
    pub compat: MultiplexCompat,
    /// Maximum distinct primer pairs per round (`0` = unlimited). Real
    /// multiplex PCR degrades beyond a few tens of primer pairs per tube.
    pub max_pairs_per_round: usize,
}

impl BatchPlanner {
    /// Paper-grade defaults: [`MultiplexCompat::paper_default`] and at most
    /// 16 primer pairs per tube.
    pub fn paper_default() -> BatchPlanner {
        BatchPlanner {
            compat: MultiplexCompat::paper_default(),
            max_pairs_per_round: 16,
        }
    }

    /// Packs `items` into rounds by deterministic greedy first-fit: each
    /// item joins the earliest round whose pairs are all compatible with
    /// the item's pairs ([`MultiplexCompat::compatible_with_all`];
    /// identical pairs — e.g. the shared log partition appearing in two
    /// items — are always mutually admissible) and whose pair budget has
    /// room; otherwise it opens a new round.
    ///
    /// An item is never rejected, and compatibility is enforced *between*
    /// items only: an item's own pairs are forced co-residents by the
    /// caller's co-location requirement (a DedicatedLog partition cannot
    /// be served without the log pair in the same tube), so the planner
    /// takes them as given rather than second-guessing the layout.
    pub fn plan(&self, items: &[PlanItem]) -> BatchPlan {
        let mut rounds: Vec<PlannedRound> = Vec::new();
        let mut round_pairs: Vec<Vec<PrimerPair>> = Vec::new();
        for item in items {
            let slot = (0..rounds.len()).find(|&r| {
                let new_pairs = item
                    .pairs
                    .iter()
                    .filter(|p| !round_pairs[r].contains(p))
                    .count();
                if self.max_pairs_per_round != 0
                    && round_pairs[r].len() + new_pairs > self.max_pairs_per_round
                {
                    return false;
                }
                item.pairs
                    .iter()
                    .all(|candidate| self.compat.compatible_with_all(candidate, &round_pairs[r]))
            });
            match slot {
                Some(r) => {
                    rounds[r].items.push(item.id);
                    for pair in &item.pairs {
                        if !round_pairs[r].contains(pair) {
                            round_pairs[r].push(pair.clone());
                        }
                    }
                }
                None => {
                    rounds.push(PlannedRound {
                        items: vec![item.id],
                    });
                    round_pairs.push(item.pairs.clone());
                }
            }
        }
        BatchPlan { rounds }
    }
}

/// Aggregate wetlab statistics of one batched retrieval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchStats {
    /// PCR + sequencing round-trips performed (the paper's unit of wetlab
    /// cost; sequential access pays one per block).
    pub rounds: usize,
    /// Distinct primer pairs multiplexed, summed over rounds.
    pub primer_pairs: usize,
    /// Total reads sequenced across all rounds.
    pub reads_sequenced: usize,
    /// Reads whose primer regions matched some requested target.
    pub reads_matched: usize,
    /// Reads sequenced that matched no requested target — the wasted
    /// amplification a multiplexed round pays for sharing a tube.
    pub wasted_reads: usize,
    /// Per-leaf software decode jobs executed across all rounds. A leaf is
    /// decoded at most once per batch call: duplicate requests collapse,
    /// and the shared DedicatedLog partition's entries — which several
    /// rounds may need — are amplified and decoded only in the first round
    /// that covers them.
    pub decode_jobs: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_seq::DnaSeq;

    fn s(text: &str) -> DnaSeq {
        text.parse().unwrap()
    }

    fn pair(f: &str, r: &str) -> PrimerPair {
        PrimerPair::new(s(f), s(r))
    }

    fn permissive() -> BatchPlanner {
        BatchPlanner {
            compat: MultiplexCompat {
                max_cross_dimer: 19,
                tm_window: 40.0,
            },
            max_pairs_per_round: 0,
        }
    }

    #[test]
    fn compatible_items_share_one_round() {
        let items = vec![
            PlanItem {
                id: 0,
                pairs: vec![pair("AACCGGTTAACCGGTTAACC", "AAGGCCTTAAGGCCTTAAGG")],
            },
            PlanItem {
                id: 1,
                pairs: vec![pair("CAGTGACTCAGTGACTCAGT", "GTCAGTCAGTCAGTCAGTCA")],
            },
        ];
        let plan = permissive().plan(&items);
        assert_eq!(plan.num_rounds(), 1);
        assert_eq!(plan.rounds[0].items, vec![0, 1]);
    }

    #[test]
    fn tm_incompatible_items_split_rounds() {
        let planner = BatchPlanner {
            compat: MultiplexCompat {
                max_cross_dimer: 19,
                tm_window: 5.0,
            },
            max_pairs_per_round: 0,
        };
        // AT-rich vs GC-rich: ~20 °C apart.
        let items = vec![
            PlanItem {
                id: 0,
                pairs: vec![pair("ATTATATAGCATTATATAGC", "ATATTAGCATATATTAGCAT")],
            },
            PlanItem {
                id: 1,
                pairs: vec![pair("GGCGCGCGTAGGCGCGCGTA", "GCGGCGTAGCGCGGCGTAGC")],
            },
        ];
        let plan = planner.plan(&items);
        assert_eq!(plan.num_rounds(), 2);
    }

    #[test]
    fn pair_cap_bounds_round_size() {
        let mut planner = permissive();
        planner.max_pairs_per_round = 2;
        let primers = [
            ("AACCGGTTAACCGGTTAACC", "AAGGCCTTAAGGCCTTAAGG"),
            ("CAGTGACTCAGTGACTCAGT", "GTCAGTCAGTCAGTCAGTCA"),
            ("TGACTGACTGACTGACTGAC", "ACTGACTGACTGACTGACTG"),
            ("CATGCATGCATGCATGCATG", "GTACGTACGTACGTACGTAC"),
        ];
        let items: Vec<PlanItem> = primers
            .iter()
            .enumerate()
            .map(|(i, (f, r))| PlanItem {
                id: i,
                pairs: vec![pair(f, r)],
            })
            .collect();
        let plan = planner.plan(&items);
        assert_eq!(plan.num_rounds(), 2);
        assert!(plan.rounds.iter().all(|r| r.items.len() <= 2));
    }

    #[test]
    fn shared_log_pair_counts_once_and_never_self_conflicts() {
        // Two DedicatedLog partitions both drag the same log pair along; a
        // strict dimer threshold must not split them on the self-comparison.
        let log = pair("TGACTGACTGACTGACTGAC", "ACTGACTGACTGACTGACTG");
        // These 4-periodic test primers form perfect 20-base dimers with
        // each other; disable the dimer check to isolate the dedup logic.
        let planner = BatchPlanner {
            compat: MultiplexCompat {
                max_cross_dimer: 20,
                tm_window: 40.0,
            },
            max_pairs_per_round: 3,
        };
        let items = vec![
            PlanItem {
                id: 0,
                pairs: vec![
                    pair("AACCGGTTAACCGGTTAACC", "AAGGCCTTAAGGCCTTAAGG"),
                    log.clone(),
                ],
            },
            PlanItem {
                id: 1,
                pairs: vec![
                    pair("CAGTGACTCAGTGACTCAGT", "GTCAGTCAGTCAGTCAGTCA"),
                    log.clone(),
                ],
            },
        ];
        // 2 partition pairs + 1 shared log pair = 3 ≤ cap: one round.
        let plan = planner.plan(&items);
        assert_eq!(plan.num_rounds(), 1);
    }

    #[test]
    fn empty_batch_plans_no_rounds() {
        assert_eq!(permissive().plan(&[]).num_rounds(), 0);
    }

    #[test]
    fn planning_is_deterministic() {
        let items: Vec<PlanItem> = (0..6)
            .map(|i| PlanItem {
                id: i,
                pairs: vec![pair("AACCGGTTAACCGGTTAACC", "AAGGCCTTAAGGCCTTAAGG")],
            })
            .collect();
        let planner = permissive();
        assert_eq!(planner.plan(&items), planner.plan(&items));
    }
}
