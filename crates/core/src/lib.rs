//! **dna-block-store** — the MICRO'23 paper's contribution: block-storage
//! semantics and versioned data updates for PCR-based DNA storage.
//!
//! A [`Partition`] is the unit the chemistry addresses: one primer pair of
//! length 20. Internally it is *blocked*: a PCR-navigable index tree
//! (`dna-index`) maps fixed-size 256-byte blocks to sparse, GC-balanced
//! 10-base indexes, so the forward primer can be elongated to address one
//! block — or partially elongated to address a range (sequential access).
//!
//! Updates are *versioned*, not edited (§5): an update is synthesized as a
//! small DNA patch whose address shares the target block's prefix and
//! differs only in the final version base (§5.3, Fig. 8), so one PCR
//! retrieves a block together with all its updates, and the patches are
//! applied in software at decode time.
//!
//! [`BlockStore`] ties the full system together over the `dna-sim` wetlab:
//! write files, read blocks and ranges back through
//! PCR → sequencing → clustering → trace reconstruction → RS decoding →
//! patch application, and update blocks by synthesizing and mixing patches.
//! Multi-block workloads go through [`BlockStore::read_blocks_batch`]: the
//! [`batch::BatchPlanner`] packs primer-compatible partitions into
//! multiplex PCR rounds and each round's reads are demultiplexed and
//! decoded in parallel.
//!
//! The store is **sharded** (see the `store` module docs): each partition
//! keeps its own tube behind its own lock, every serving operation takes
//! `&self`, the expensive wetlab/decode phases run against shard
//! snapshots with no locks held, and the multiplex rounds of one batch
//! execute concurrently on scoped threads.
//!
//! Concurrent traffic goes through the serving layer
//! ([`service::StoreServer`]): many client threads issue
//! `read_block`/`read_range`/`update_block` against one shared server,
//! which coalesces reads arriving within a bounded batching window into
//! multiplex rounds *across requests* and serves repeated hot-block reads
//! from an update-aware decoded-block cache ([`cache::BlockCache`]) at
//! zero wetlab cost.
//!
//! Long-lived stores stay writable through the [`compaction`] subsystem:
//! a [`compaction::Compactor`] folds accumulated patch chains back into
//! fresh base units — retiring the stale molecules from the pool and
//! re-synthesizing merged blocks — so update capacity and single-unit
//! read scopes are both reclaimed instead of degrading monotonically.
//!
//! Stores survive the process through the [`persist`] subsystem: a
//! versioned, checksummed snapshot image plus an epoch-keyed write-ahead
//! journal. [`persist::open_or_recover_store`] (or
//! [`service::StoreServer::open_or_recover`]) restores the pre-crash
//! committed prefix byte-identically, truncating any torn journal tail.
//!
//! # Examples
//!
//! ```
//! use dna_block_store::{BlockStore, PartitionConfig};
//!
//! let mut store = BlockStore::new(42);
//! let pid = store.create_partition(PartitionConfig::paper_default(7)).unwrap();
//! let data = vec![7u8; 1000]; // ~4 blocks
//! let written = store.write_file(pid, &data).unwrap();
//! assert_eq!(written, 4);
//! let block0 = store.read_block(pid, 0).unwrap();
//! assert_eq!(&block0.block.data[..], &data[..256]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod error;
mod partition;
mod store;
mod update;

pub mod batch;
pub mod cache;
pub mod capacity;
pub mod compaction;
pub mod cost;
pub mod layout;
pub mod persist;
pub mod planner;
pub mod service;
pub mod sync;
pub mod workload;

pub use batch::{BatchPlan, BatchPlanner, BatchStats, PlanItem, PlannedRound};
pub use block::{checksum64, unit_checksum_ok, Block, BLOCK_SIZE, UNIT_BYTES};
pub use cache::BlockCache;
pub use compaction::{CompactionPolicy, CompactionReport, Compactor};
pub use error::StoreError;
pub use layout::UpdateLayout;
pub use partition::{
    parse_pointer_block, pointer_block, Partition, PartitionBookkeeping, PartitionConfig,
    ReclaimedUpdates, VersionSlot,
};
pub use persist::{open_or_recover_store, PersistPaths};
pub use service::{BatchWindow, CachePolicy, ServedRead, ServerConfig, ServerStats, StoreServer};
pub use store::{
    BatchReadOutcome, BlockReadOutcome, BlockStore, CommittedUpdate, PartitionId, PartitionShard,
    ReadProtocolStats,
};
pub use update::UpdatePatch;
