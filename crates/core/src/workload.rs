//! Workload generators for the paper's experiments (§6.1) and the serving
//! layer's load drivers.
//!
//! Substitution note (DESIGN.md §2): the wetlab encodes the 150 kB text of
//! *Alice's Adventures in Wonderland*. The text itself is immaterial to any
//! measured quantity — what matters is the block structure: **587 encoding
//! units of 256 B** (8805 strands) in file 13, alongside 12 unrelated files.
//! We generate a deterministic English-like text of exactly 587 × 256 =
//! 150,272 bytes, organized in paragraph-sized chunks.
//!
//! Beyond the paper's fixed corpus, this module provides the primitives the
//! wire-serving workload driver is built from: [`derive_seed`] (collision-
//! free seed derivation for per-tenant/per-file corpora), [`Zipf`] (skewed
//! popularity sampling over arbitrarily large rank spaces — millions of
//! simulated users cost nothing, the population size is just a sampler
//! parameter), and [`WorkloadSpec`] (deterministic per-client operation
//! streams mixing reads, updates and maintenance over skewed tenants and
//! blocks).

use dna_seq::rng::{DetRng, SplitMix64};

/// Number of blocks in the paper's book partition (§7.5: 8805 molecules /
/// 15 per unit = 587 blocks).
pub const ALICE_BLOCKS: usize = 587;

/// Bytes in the generated book: 587 × 256 = 150,272 ≈ the paper's "150KB".
pub const ALICE_BYTES: usize = ALICE_BLOCKS * crate::BLOCK_SIZE;

/// Word stock for the deterministic prose generator.
const WORDS: &[&str] = &[
    "alice",
    "began",
    "to",
    "get",
    "very",
    "tired",
    "of",
    "sitting",
    "by",
    "her",
    "sister",
    "on",
    "the",
    "bank",
    "and",
    "having",
    "nothing",
    "do",
    "once",
    "or",
    "twice",
    "she",
    "had",
    "peeped",
    "into",
    "book",
    "was",
    "reading",
    "but",
    "it",
    "no",
    "pictures",
    "conversations",
    "in",
    "what",
    "is",
    "use",
    "a",
    "thought",
    "without",
    "white",
    "rabbit",
    "with",
    "pink",
    "eyes",
    "ran",
    "close",
    "nothing",
    "so",
    "remarkable",
    "that",
    "down",
    "went",
    "never",
    "how",
    "world",
    "curious",
    "garden",
    "queen",
    "said",
    "cat",
    "time",
    "little",
    "door",
    "key",
    "table",
    "bottle",
    "drink",
    "me",
    "grew",
    "larger",
    "smaller",
];

/// Generates the deterministic "book": exactly [`ALICE_BYTES`] of
/// paragraph-structured ASCII prose. Always identical (fixed seed), so every
/// experiment and test shares one ground truth.
pub fn alice_book() -> Vec<u8> {
    deterministic_text(ALICE_BYTES, 0xA11CE)
}

/// One 256-byte paragraph (block) of the book.
///
/// # Panics
///
/// Panics if `block >= ALICE_BLOCKS`.
pub fn alice_paragraph(block: usize) -> Vec<u8> {
    assert!(block < ALICE_BLOCKS, "block {block} out of range");
    let book = alice_book();
    book[block * crate::BLOCK_SIZE..(block + 1) * crate::BLOCK_SIZE].to_vec()
}

/// English-like deterministic filler text of exactly `len` bytes.
pub fn deterministic_text(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(len + 16);
    let mut sentence_words = 0usize;
    while out.len() < len {
        let word = WORDS[rng.gen_range(WORDS.len())];
        if sentence_words > 0 || !out.is_empty() {
            out.push(b' ');
        }
        out.extend_from_slice(word.as_bytes());
        sentence_words += 1;
        if sentence_words >= 8 + rng.gen_range(8) {
            out.extend_from_slice(b".");
            sentence_words = 0;
        }
    }
    out.truncate(len);
    out
}

/// Derives an independent corpus/stream seed from a base seed and up to
/// two coordinate indices (e.g. tenant and file index).
///
/// Raw addition (`base + i`, the scheme [`unrelated_files`] used to use)
/// collides as soon as two coordinates are summed into the same namespace:
/// `base + tenant + file` is identical for `(tenant=0, file=1)` and
/// `(tenant=1, file=0)`, so two tenants would silently share a corpus.
/// Here each coordinate passes through its own SplitMix64 finalization
/// round before mixing, so distinct `(base, a, b)` triples map to distinct
/// seeds for any realistic workload size (64-bit avalanche mixing; the
/// regression test pins the exact additive-collision case).
pub fn derive_seed(base: u64, a: u64, b: u64) -> u64 {
    // One SplitMix64 step per coordinate: full-avalanche finalization with
    // distinct per-coordinate offsets, then a final mix of the sum so the
    // result is not a plain XOR of independent terms.
    let mut m = SplitMix64::new(base);
    let base_m = m.next_u64();
    let mut m = SplitMix64::new(a ^ 0x9E6D_62D0_6F6A_9A9B);
    let a_m = m.next_u64();
    let mut m = SplitMix64::new(b ^ 0xC2B2_AE3D_27D4_EB4F);
    let b_m = m.next_u64();
    let mut f = SplitMix64::new(base_m ^ a_m.rotate_left(21) ^ b_m.rotate_left(42));
    f.next_u64()
}

/// The 12 unrelated files stored alongside the book (§6.1: "12 of these
/// files simply present unrelated data partitions in the same DNA pool").
/// `blocks_each` controls their size (the paper does not specify; the
/// experiments use a small value because only their *presence* matters).
pub fn unrelated_files(count: usize, blocks_each: usize) -> Vec<Vec<u8>> {
    tenant_files(0xF11E, 0, count, blocks_each)
}

/// `count` deterministic per-tenant corpus files of `blocks_each` blocks.
/// Seeds come from [`derive_seed`], so no two `(tenant, file)` pairs share
/// bytes — the property the additive scheme violated.
pub fn tenant_files(base: u64, tenant: u64, count: usize, blocks_each: usize) -> Vec<Vec<u8>> {
    (0..count)
        .map(|i| {
            deterministic_text(
                blocks_each * crate::BLOCK_SIZE,
                derive_seed(base, tenant, i as u64),
            )
        })
        .collect()
}

// ---------------------------------------------------------------------------
// skewed popularity sampling
// ---------------------------------------------------------------------------

/// A Zipf-law popularity sampler over ranks `0..n` (rank 0 hottest).
///
/// Uses the continuous inverse-CDF approximation of the Zipf law: the
/// density `x^-s` over `[1, n+1]` is inverted in closed form, and the
/// sampled coordinate is floored back to a rank. Rank frequencies follow
/// `(rank+1)^-s` closely — the property a load generator needs — while a
/// draw is O(1) in both time and memory, so a *population* of millions of
/// simulated users costs exactly as much as one of ten: `n` is only a
/// parameter of the inversion.
///
/// `s = 0` degenerates to the uniform distribution; `s ≈ 1` is the
/// classic web/storage popularity curve; larger `s` concentrates traffic
/// further onto the head.
///
/// # Examples
///
/// ```
/// use dna_block_store::workload::Zipf;
/// use dna_seq::rng::DetRng;
///
/// let zipf = Zipf::new(1_000_000, 1.1);
/// let mut rng = DetRng::seed_from_u64(7);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 1_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zipf {
    n: u64,
    s: f64,
    /// `(n+1)^(1-s) - 1`, precomputed for the inversion (`s != 1` branch).
    span: f64,
    /// `ln(n+1)`, precomputed for the `s == 1` branch.
    ln_np1: f64,
}

impl Zipf {
    /// A sampler over ranks `0..n` with exponent `s >= 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, or if `s` is negative or non-finite.
    pub fn new(n: u64, s: f64) -> Zipf {
        assert!(n > 0, "zipf needs a non-empty rank space");
        assert!(s.is_finite() && s >= 0.0, "zipf exponent must be >= 0");
        let np1 = (n + 1) as f64;
        Zipf {
            n,
            s,
            span: np1.powf(1.0 - s) - 1.0,
            ln_np1: np1.ln(),
        }
    }

    /// Number of ranks (`n`).
    pub fn ranks(&self) -> u64 {
        self.n
    }

    /// Draws one rank in `0..n`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        let u = rng.next_f64();
        // Invert the continuous CDF F(x) = H(x)/H(n+1) over [1, n+1] with
        // H the integral of x^-s from 1.
        let x = if (self.s - 1.0).abs() < 1e-9 {
            (u * self.ln_np1).exp()
        } else {
            (1.0 + u * self.span).powf(1.0 / (1.0 - self.s))
        };
        // x in [1, n+1) maps to rank floor(x) - 1; clamp against the open
        // upper bound landing exactly on n+1 through rounding.
        ((x.floor() as u64).max(1) - 1).min(self.n - 1)
    }
}

// ---------------------------------------------------------------------------
// operation streams for the serving driver
// ---------------------------------------------------------------------------

/// Relative weights of the operation kinds in a generated stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadMix {
    /// Weight of block reads.
    pub reads: u32,
    /// Weight of block updates.
    pub updates: u32,
    /// Weight of maintenance (compaction) requests.
    pub maintenance: u32,
}

impl WorkloadMix {
    /// The serving default: read-mostly with a steady update trickle and
    /// occasional maintenance — the access pattern the rewritable-DNA
    /// literature models (Yazdi et al. 2015).
    pub fn read_mostly() -> WorkloadMix {
        WorkloadMix {
            reads: 90,
            updates: 9,
            maintenance: 1,
        }
    }

    fn total(&self) -> u32 {
        self.reads + self.updates + self.maintenance
    }
}

/// One generated client operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Read one block.
    Read,
    /// Update one block (the driver supplies deterministic new content).
    Update,
    /// Ask the server for a maintenance (compaction) pass.
    Maintenance,
}

/// One operation of a client stream: which simulated user issued it,
/// against which tenant and block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadOp {
    /// Simulated user id in `0..spec.users` (zipf-ranked within its
    /// tenant: id `tenant + rank * tenants`).
    pub user: u64,
    /// Tenant the operation targets, in `0..spec.tenants`.
    pub tenant: u64,
    /// Block within the tenant's partition, in `0..spec.blocks_per_tenant`.
    pub block: u64,
    /// What the user does.
    pub kind: OpKind,
}

/// A deterministic, skewed serving workload: millions of simulated users
/// spread over skewed tenants, issuing a read/update/maintenance mix
/// against zipf-popular blocks.
///
/// [`WorkloadSpec::client_stream`] derives an independent per-client
/// operation stream from the spec seed via [`derive_seed`], so N driver
/// threads replay disjoint but reproducible slices of the same logical
/// population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Base seed; every client stream derives from it.
    pub seed: u64,
    /// Simulated user population (not driver threads — a sampler range).
    pub users: u64,
    /// Number of tenants (each served by its own partition).
    pub tenants: u64,
    /// Blocks per tenant partition.
    pub blocks_per_tenant: u64,
    /// Zipf exponent of tenant popularity (tenant skew).
    pub tenant_skew: f64,
    /// Zipf exponent of block popularity within a tenant.
    pub block_skew: f64,
    /// Zipf exponent of user activity within a tenant.
    pub user_skew: f64,
    /// Operation mix.
    pub mix: WorkloadMix,
}

impl WorkloadSpec {
    /// A small, serving-bench-sized default: 2 million simulated users
    /// over 4 tenants with web-like skew and a read-mostly mix.
    pub fn serving_default(seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            seed,
            users: 2_000_000,
            tenants: 4,
            blocks_per_tenant: 8,
            tenant_skew: 0.8,
            block_skew: 1.1,
            user_skew: 1.0,
            mix: WorkloadMix::read_mostly(),
        }
    }

    /// The deterministic operation stream of driver client `client`.
    ///
    /// # Panics
    ///
    /// Panics if any population dimension of the spec is zero or the mix
    /// has no weight.
    pub fn client_stream(&self, client: u64) -> OpStream {
        assert!(self.users >= self.tenants && self.tenants > 0);
        assert!(self.blocks_per_tenant > 0);
        assert!(self.mix.total() > 0, "workload mix has no weight");
        OpStream {
            spec: *self,
            tenant_zipf: Zipf::new(self.tenants, self.tenant_skew),
            block_zipf: Zipf::new(self.blocks_per_tenant, self.block_skew),
            user_zipf: Zipf::new((self.users / self.tenants).max(1), self.user_skew),
            rng: DetRng::seed_from_u64(derive_seed(self.seed, 0x0D21_4E55, client)),
        }
    }
}

/// Infinite deterministic iterator of [`WorkloadOp`]s for one client; see
/// [`WorkloadSpec::client_stream`].
#[derive(Debug, Clone)]
pub struct OpStream {
    spec: WorkloadSpec,
    tenant_zipf: Zipf,
    block_zipf: Zipf,
    user_zipf: Zipf,
    rng: DetRng,
}

impl Iterator for OpStream {
    type Item = WorkloadOp;

    fn next(&mut self) -> Option<WorkloadOp> {
        let tenant = self.tenant_zipf.sample(&mut self.rng);
        let user = tenant + self.user_zipf.sample(&mut self.rng) * self.spec.tenants;
        let block = self.block_zipf.sample(&mut self.rng);
        let mix = self.spec.mix;
        // lossless: gen_range(n) < n and n came from a u32 total.
        let roll = self.rng.gen_range(mix.total() as usize) as u32;
        let kind = if roll < mix.reads {
            OpKind::Read
        } else if roll < mix.reads + mix.updates {
            OpKind::Update
        } else {
            OpKind::Maintenance
        };
        Some(WorkloadOp {
            user,
            tenant,
            block,
            kind,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn book_has_paper_dimensions() {
        let book = alice_book();
        assert_eq!(book.len(), 150_272);
        assert_eq!(book.len() % crate::BLOCK_SIZE, 0);
        assert_eq!(book.len() / crate::BLOCK_SIZE, 587);
    }

    #[test]
    fn book_is_deterministic() {
        assert_eq!(alice_book(), alice_book());
    }

    #[test]
    fn paragraphs_tile_the_book() {
        let book = alice_book();
        for b in [0usize, 144, 307, 531, 586] {
            assert_eq!(alice_paragraph(b), &book[b * 256..(b + 1) * 256]);
        }
    }

    #[test]
    fn text_is_printable_ascii() {
        let book = alice_book();
        assert!(book
            .iter()
            .all(|&c| c == b' ' || c == b'.' || c.is_ascii_lowercase()));
    }

    #[test]
    fn unrelated_files_are_distinct() {
        let files = unrelated_files(12, 3);
        assert_eq!(files.len(), 12);
        for f in &files {
            assert_eq!(f.len(), 768);
        }
        assert_ne!(files[0], files[1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn paragraph_bounds_checked() {
        alice_paragraph(587);
    }

    /// The regression the additive scheme failed: `(tenant=0, file=1)` and
    /// `(tenant=1, file=0)` sum to the same raw seed, so the old
    /// `base + tenant + file` derivation handed two tenants one corpus.
    #[test]
    #[allow(clippy::identity_op)] // spelling out the colliding sums is the point
    fn derive_seed_breaks_additive_collisions() {
        let base = 0xF11E_u64;
        assert_eq!(base + 0 + 1, base + 1 + 0, "the additive scheme collides");
        assert_ne!(derive_seed(base, 0, 1), derive_seed(base, 1, 0));
        let tenant0 = tenant_files(base, 0, 2, 1);
        let tenant1 = tenant_files(base, 1, 2, 1);
        assert_ne!(tenant0[1], tenant1[0], "tenants must not share corpora");
    }

    #[test]
    fn derive_seed_is_distinct_over_a_grid() {
        let mut seen = std::collections::BTreeSet::new();
        for base in [0u64, 0xF11E, u64::MAX] {
            for a in 0..8u64 {
                for b in 0..8u64 {
                    assert!(
                        seen.insert(derive_seed(base, a, b)),
                        "collision at base={base:#x} a={a} b={b}"
                    );
                }
            }
        }
    }

    #[test]
    fn derive_seed_is_stable() {
        // Pin the mapping: corpora derived from it are baked into tests and
        // bench oracles, so the function must never change silently.
        assert_eq!(derive_seed(0xF11E, 0, 0), derive_seed(0xF11E, 0, 0));
        assert_ne!(derive_seed(0xF11E, 0, 0), 0xF11E);
    }

    #[test]
    fn zipf_stays_in_range_and_is_deterministic() {
        for (n, s) in [(1u64, 1.0), (7, 0.0), (100, 1.0), (1_000_000, 1.2)] {
            let zipf = Zipf::new(n, s);
            let mut a = DetRng::seed_from_u64(42);
            let mut b = DetRng::seed_from_u64(42);
            for _ in 0..500 {
                let ra = zipf.sample(&mut a);
                assert!(ra < n, "rank {ra} out of 0..{n}");
                assert_eq!(ra, zipf.sample(&mut b), "same seed, same draws");
            }
        }
    }

    #[test]
    fn zipf_skew_concentrates_on_the_head() {
        let zipf = Zipf::new(1000, 1.1);
        let mut rng = DetRng::seed_from_u64(9);
        let mut head = 0usize;
        let draws = 4000;
        for _ in 0..draws {
            if zipf.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // Under uniform sampling the top-10 ranks would get ~1% of draws;
        // zipf(1.1) gives them well over a third.
        assert!(
            head > draws / 3,
            "expected head concentration, got {head}/{draws}"
        );
        // Uniform (s = 0) must NOT concentrate.
        let flat = Zipf::new(1000, 0.0);
        let mut rng = DetRng::seed_from_u64(9);
        let head_flat = (0..draws).filter(|_| flat.sample(&mut rng) < 10).count();
        assert!(
            head_flat < draws / 10,
            "uniform sampled {head_flat}/{draws}"
        );
    }

    #[test]
    fn zipf_millions_of_ranks_cost_nothing() {
        // The population is a parameter, not a table: constructing and
        // sampling a 100-million-rank sampler is O(1).
        let zipf = Zipf::new(100_000_000, 1.0);
        let mut rng = DetRng::seed_from_u64(1);
        let mut max_seen = 0;
        for _ in 0..2000 {
            max_seen = max_seen.max(zipf.sample(&mut rng));
        }
        assert!(max_seen < 100_000_000);
        assert!(max_seen > 10, "tail must still be reachable: {max_seen}");
    }

    #[test]
    fn client_streams_are_deterministic_and_independent() {
        let spec = WorkloadSpec::serving_default(77);
        let a: Vec<WorkloadOp> = spec.client_stream(0).take(64).collect();
        let a2: Vec<WorkloadOp> = spec.client_stream(0).take(64).collect();
        let b: Vec<WorkloadOp> = spec.client_stream(1).take(64).collect();
        assert_eq!(a, a2, "same client, same stream");
        assert_ne!(a, b, "different clients, different streams");
        for op in a.iter().chain(b.iter()) {
            assert!(op.tenant < spec.tenants);
            assert!(op.block < spec.blocks_per_tenant);
            assert!(op.user < spec.users);
            assert_eq!(op.user % spec.tenants, op.tenant, "user belongs to tenant");
        }
    }

    #[test]
    fn op_stream_respects_the_mix() {
        let spec = WorkloadSpec {
            mix: WorkloadMix {
                reads: 1,
                updates: 0,
                maintenance: 0,
            },
            ..WorkloadSpec::serving_default(3)
        };
        assert!(spec
            .client_stream(0)
            .take(200)
            .all(|op| op.kind == OpKind::Read));
        let mixed = WorkloadSpec::serving_default(3);
        let ops: Vec<WorkloadOp> = mixed.client_stream(0).take(2000).collect();
        let reads = ops.iter().filter(|o| o.kind == OpKind::Read).count();
        let updates = ops.iter().filter(|o| o.kind == OpKind::Update).count();
        let maint = ops.iter().filter(|o| o.kind == OpKind::Maintenance).count();
        assert!(
            reads > updates && updates > maint,
            "{reads}/{updates}/{maint}"
        );
        assert!(maint > 0, "1% maintenance must still appear in 2000 ops");
    }
}
