//! Workload generators for the paper's experiments (§6.1).
//!
//! Substitution note (DESIGN.md §2): the wetlab encodes the 150 kB text of
//! *Alice's Adventures in Wonderland*. The text itself is immaterial to any
//! measured quantity — what matters is the block structure: **587 encoding
//! units of 256 B** (8805 strands) in file 13, alongside 12 unrelated files.
//! We generate a deterministic English-like text of exactly 587 × 256 =
//! 150,272 bytes, organized in paragraph-sized chunks.

use dna_seq::rng::DetRng;

/// Number of blocks in the paper's book partition (§7.5: 8805 molecules /
/// 15 per unit = 587 blocks).
pub const ALICE_BLOCKS: usize = 587;

/// Bytes in the generated book: 587 × 256 = 150,272 ≈ the paper's "150KB".
pub const ALICE_BYTES: usize = ALICE_BLOCKS * crate::BLOCK_SIZE;

/// Word stock for the deterministic prose generator.
const WORDS: &[&str] = &[
    "alice",
    "began",
    "to",
    "get",
    "very",
    "tired",
    "of",
    "sitting",
    "by",
    "her",
    "sister",
    "on",
    "the",
    "bank",
    "and",
    "having",
    "nothing",
    "do",
    "once",
    "or",
    "twice",
    "she",
    "had",
    "peeped",
    "into",
    "book",
    "was",
    "reading",
    "but",
    "it",
    "no",
    "pictures",
    "conversations",
    "in",
    "what",
    "is",
    "use",
    "a",
    "thought",
    "without",
    "white",
    "rabbit",
    "with",
    "pink",
    "eyes",
    "ran",
    "close",
    "nothing",
    "so",
    "remarkable",
    "that",
    "down",
    "went",
    "never",
    "how",
    "world",
    "curious",
    "garden",
    "queen",
    "said",
    "cat",
    "time",
    "little",
    "door",
    "key",
    "table",
    "bottle",
    "drink",
    "me",
    "grew",
    "larger",
    "smaller",
];

/// Generates the deterministic "book": exactly [`ALICE_BYTES`] of
/// paragraph-structured ASCII prose. Always identical (fixed seed), so every
/// experiment and test shares one ground truth.
pub fn alice_book() -> Vec<u8> {
    deterministic_text(ALICE_BYTES, 0xA11CE)
}

/// One 256-byte paragraph (block) of the book.
///
/// # Panics
///
/// Panics if `block >= ALICE_BLOCKS`.
pub fn alice_paragraph(block: usize) -> Vec<u8> {
    assert!(block < ALICE_BLOCKS, "block {block} out of range");
    let book = alice_book();
    book[block * crate::BLOCK_SIZE..(block + 1) * crate::BLOCK_SIZE].to_vec()
}

/// English-like deterministic filler text of exactly `len` bytes.
pub fn deterministic_text(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(len + 16);
    let mut sentence_words = 0usize;
    while out.len() < len {
        let word = WORDS[rng.gen_range(WORDS.len())];
        if sentence_words > 0 || !out.is_empty() {
            out.push(b' ');
        }
        out.extend_from_slice(word.as_bytes());
        sentence_words += 1;
        if sentence_words >= 8 + rng.gen_range(8) {
            out.extend_from_slice(b".");
            sentence_words = 0;
        }
    }
    out.truncate(len);
    out
}

/// The 12 unrelated files stored alongside the book (§6.1: "12 of these
/// files simply present unrelated data partitions in the same DNA pool").
/// `blocks_each` controls their size (the paper does not specify; the
/// experiments use a small value because only their *presence* matters).
pub fn unrelated_files(count: usize, blocks_each: usize) -> Vec<Vec<u8>> {
    (0..count)
        .map(|i| deterministic_text(blocks_each * crate::BLOCK_SIZE, 0xF11E + i as u64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn book_has_paper_dimensions() {
        let book = alice_book();
        assert_eq!(book.len(), 150_272);
        assert_eq!(book.len() % crate::BLOCK_SIZE, 0);
        assert_eq!(book.len() / crate::BLOCK_SIZE, 587);
    }

    #[test]
    fn book_is_deterministic() {
        assert_eq!(alice_book(), alice_book());
    }

    #[test]
    fn paragraphs_tile_the_book() {
        let book = alice_book();
        for b in [0usize, 144, 307, 531, 586] {
            assert_eq!(alice_paragraph(b), &book[b * 256..(b + 1) * 256]);
        }
    }

    #[test]
    fn text_is_printable_ascii() {
        let book = alice_book();
        assert!(book
            .iter()
            .all(|&c| c == b' ' || c == b'.' || c.is_ascii_lowercase()));
    }

    #[test]
    fn unrelated_files_are_distinct() {
        let files = unrelated_files(12, 3);
        assert_eq!(files.len(), 12);
        for f in &files {
            assert_eq!(f.len(), 768);
        }
        assert_ne!(files[0], files[1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn paragraph_bounds_checked() {
        alice_paragraph(587);
    }
}
