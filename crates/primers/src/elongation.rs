//! Elongated primers (§4, Fig. 4).
//!
//! A main primer is extended with the sync base and a prefix of the target's
//! sparse index. Because the index construction keeps *every* prefix
//! GC-balanced and homopolymer-free, every elongation length yields a valid
//! PCR primer (§4.2) — that is the entire point of the sparse encoding.

use crate::{PrimerConstraints, PrimerViolation};
use dna_seq::tm::melting_temperature;
use dna_seq::DnaSeq;

/// A main primer plus a variable elongation tail.
///
/// The tail is everything appended after the main primer: the sync base (if
/// any) followed by the desired portion of the sparse index — possibly
/// including the version base when targeting a specific update slot.
///
/// # Examples
///
/// ```
/// use dna_primers::ElongatedPrimer;
/// use dna_seq::DnaSeq;
///
/// let main: DnaSeq = "ACGTACGTACGTACGTACGT".parse().unwrap();
/// let tail: DnaSeq = "ACTGAGCATG".parse().unwrap(); // sync omitted here
/// let ep = ElongatedPrimer::new(main.clone(), tail);
/// assert_eq!(ep.len(), 30);
/// assert!(ep.full().starts_with(&main));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ElongatedPrimer {
    main: DnaSeq,
    tail: DnaSeq,
}

impl ElongatedPrimer {
    /// Creates an elongated primer from its main part and tail.
    pub fn new(main: DnaSeq, tail: DnaSeq) -> ElongatedPrimer {
        ElongatedPrimer { main, tail }
    }

    /// The main (partition) primer.
    pub fn main(&self) -> &DnaSeq {
        &self.main
    }

    /// The elongation tail.
    pub fn tail(&self) -> &DnaSeq {
        &self.tail
    }

    /// Full primer sequence: main followed by tail.
    pub fn full(&self) -> DnaSeq {
        self.main.concat(&self.tail)
    }

    /// Total length in bases (paper's block primers: 20 + 1 + 10 = 31).
    pub fn len(&self) -> usize {
        self.main.len() + self.tail.len()
    }

    /// `true` when there is no elongation at all (plain main primer).
    pub fn is_empty(&self) -> bool {
        self.main.is_empty() && self.tail.is_empty()
    }

    /// Estimated melting temperature of the full primer (°C). The paper's
    /// 31-base elongated primers melt at 63–64 °C (§6.5).
    pub fn tm(&self) -> f64 {
        melting_temperature(&self.full())
    }

    /// Validates that the *fully elongated* primer is PCR-compatible and
    /// that every intermediate elongation point also stays within the GC
    /// window (§4.2: "the GC content needs to be balanced within every part
    /// of every index regardless of its length").
    ///
    /// `main_constraints` applies to the main primer; the elongation checks
    /// use its GC window and homopolymer cap on every prefix of the full
    /// primer at least as long as the main primer.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self, main_constraints: &PrimerConstraints) -> Result<(), PrimerViolation> {
        main_constraints.validate(&self.main)?;
        let full = self.full();
        // Homopolymer check across the junction and tail.
        let run = full.max_homopolymer();
        if run > main_constraints.max_homopolymer {
            return Err(PrimerViolation::Homopolymer {
                run,
                max: main_constraints.max_homopolymer,
            });
        }
        // GC balance at every elongation point.
        for cut in self.main.len()..=full.len() {
            let prefix = full.prefix(cut);
            let gc = prefix.gc_fraction();
            if gc < main_constraints.gc_window.0 || gc > main_constraints.gc_window.1 {
                return Err(PrimerViolation::GcOutOfRange {
                    gc,
                    window: main_constraints.gc_window,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_index::{IndexTree, LeafId};
    use dna_seq::Base;

    fn main_primer() -> DnaSeq {
        // Balanced, run-free, non-self-complementary.
        "AACCGGTTAACCGGTTAACC".parse().unwrap()
    }

    #[test]
    fn paper_block_primer_is_31_bases() {
        let tree = IndexTree::new(0xA11CE, 5);
        let mut tail = DnaSeq::new();
        tail.push(Base::A); // sync
        tail.extend(tree.leaf_index(LeafId(531)).iter());
        let ep = ElongatedPrimer::new(main_primer(), tail);
        assert_eq!(ep.len(), 31);
        assert!((60.0..67.0).contains(&ep.tm()), "tm {}", ep.tm());
    }

    #[test]
    fn every_elongation_point_validates_with_sparse_index() {
        // The §4.2 requirement: elongation by 6 or by 10 bases must both be
        // PCR-compatible. The sparse tree guarantees it.
        let constraints = PrimerConstraints::paper_default(20);
        let tree = IndexTree::new(0xFACE, 5);
        for leaf in [0u64, 144, 307, 531, 1023] {
            let mut tail = DnaSeq::new();
            tail.push(Base::A);
            tail.extend(tree.leaf_index(LeafId(leaf)).iter());
            let ep = ElongatedPrimer::new(main_primer(), tail);
            ep.validate(&constraints)
                .unwrap_or_else(|v| panic!("leaf {leaf}: {v}"));
        }
    }

    #[test]
    fn dense_index_elongation_fails_validation() {
        // The dense baseline's indexes break elongation: e.g. leaf 0 is
        // AAAAA — a homopolymer run of 5 plus GC collapse.
        let constraints = PrimerConstraints::paper_default(20);
        let tree = IndexTree::dense(5);
        let mut tail = DnaSeq::new();
        tail.push(Base::A);
        tail.extend(tree.leaf_index(LeafId(0)).iter());
        let ep = ElongatedPrimer::new(main_primer(), tail);
        assert!(ep.validate(&constraints).is_err());
    }

    #[test]
    fn empty_tail_is_the_main_primer() {
        let ep = ElongatedPrimer::new(main_primer(), DnaSeq::new());
        assert_eq!(ep.full(), main_primer());
        assert_eq!(ep.len(), 20);
        assert!(!ep.is_empty());
    }

    #[test]
    fn junction_homopolymer_detected() {
        // Main ends in CC; a tail starting with CC creates a run of 4.
        let constraints = PrimerConstraints::paper_default(20);
        let tail: DnaSeq = "CCTG".parse().unwrap();
        let ep = ElongatedPrimer::new(main_primer(), tail);
        assert!(matches!(
            ep.validate(&constraints),
            Err(PrimerViolation::Homopolymer { .. })
        ));
    }
}
