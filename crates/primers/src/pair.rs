//! Forward/reverse primer pairs.

use dna_seq::DnaSeq;

/// The pair of main primers that chemically tags one partition (§1: "a pair
/// of random-access PCR primers of length 20 ... an independent storage
/// partition").
///
/// The forward primer appears verbatim at a strand's 5' end; the reverse
/// primer's binding site is the reverse complement at the 3' end.
///
/// # Examples
///
/// ```
/// use dna_primers::PrimerPair;
/// use dna_seq::DnaSeq;
///
/// let fwd: DnaSeq = "ACGTACGTACGTACGTACGT".parse().unwrap();
/// let rev: DnaSeq = "TGCATGCATGCATGCATGCA".parse().unwrap();
/// let pair = PrimerPair::new(fwd.clone(), rev.clone());
/// let strand = fwd.concat(&"AACCGGTT".parse().unwrap()).concat(&rev.reverse_complement());
/// assert!(pair.matches_strand(&strand));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PrimerPair {
    forward: DnaSeq,
    reverse: DnaSeq,
}

impl PrimerPair {
    /// Creates a pair from forward and reverse primer sequences.
    pub fn new(forward: DnaSeq, reverse: DnaSeq) -> PrimerPair {
        PrimerPair { forward, reverse }
    }

    /// The forward primer.
    pub fn forward(&self) -> &DnaSeq {
        &self.forward
    }

    /// The reverse primer.
    pub fn reverse(&self) -> &DnaSeq {
        &self.reverse
    }

    /// The reverse primer's binding site as it appears on the sense strand
    /// (its reverse complement).
    pub fn reverse_site(&self) -> DnaSeq {
        self.reverse.reverse_complement()
    }

    /// `true` if `strand` begins with the forward primer and ends with the
    /// reverse primer's site (exact match — the simulator's annealing model
    /// handles mismatches).
    pub fn matches_strand(&self, strand: &DnaSeq) -> bool {
        strand.starts_with(&self.forward) && strand.ends_with(&self.reverse_site())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> PrimerPair {
        // Neither primer is a reverse-complement palindrome.
        PrimerPair::new(
            "AACCGGTTAACCGGTTAACC".parse().unwrap(),
            "AAGGCCTTAAGGCCTTAAGG".parse().unwrap(),
        )
    }

    #[test]
    fn match_requires_both_ends() {
        let p = pair();
        let payload: DnaSeq = "AACCGGTT".parse().unwrap();
        let good = p.forward().concat(&payload).concat(&p.reverse_site());
        assert!(p.matches_strand(&good));
        let bad_tail = p.forward().concat(&payload).concat(p.reverse()); // not complemented
        assert!(!p.matches_strand(&bad_tail));
        let bad_head = payload.concat(&p.reverse_site());
        assert!(!p.matches_strand(&bad_head));
    }

    #[test]
    fn reverse_site_is_involution() {
        let p = pair();
        assert_eq!(p.reverse_site().reverse_complement(), *p.reverse());
    }
}
