//! PCR primer design for DNA storage.
//!
//! Main access primers define partitions and must be mutually distant so any
//! partition can be extracted regardless of relative concentration (§4.2).
//! The paper (§1) notes that the largest known mutually-compatible sets
//! contain only ~1000–3000 primers of length 20, and that the count scales
//! roughly linearly with primer length (~10K at length 30) — which is what
//! makes primer pairs too precious to spend one per object, and motivates
//! the block architecture.
//!
//! This crate provides:
//! - [`PrimerConstraints`] — GC window, homopolymer cap, melting-temperature
//!   window, hairpin self-complementarity cap,
//! - [`PrimerLibrary`] — greedy random search for mutually-compatible primer
//!   sets at a minimum pairwise Hamming distance (the §1 scaling experiment),
//! - [`ElongatedPrimer`] — a main primer extended with a sync base and a
//!   (possibly partial) sparse index prefix (§4 / Fig. 4), with validation
//!   that *every* elongation point stays PCR-compatible (§4.2),
//! - [`PrimerPair`] — the forward/reverse pair tagging one partition,
//! - [`MultiplexCompat`] — cross-dimer and Tm-window checks deciding which
//!   primer pairs may share one multiplex PCR tube (batched retrieval).
//!
//! # Examples
//!
//! ```
//! use dna_primers::{PrimerConstraints, PrimerLibrary};
//!
//! let constraints = PrimerConstraints::paper_default(20);
//! let lib = PrimerLibrary::generate(&constraints, 8, 20_000, 42);
//! assert_eq!(lib.len(), 8);
//! for p in lib.primers() {
//!     assert!(constraints.validate(p).is_ok());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod constraints;
mod elongation;
mod library;
mod multiplex;
mod pair;

pub use constraints::{PrimerConstraints, PrimerViolation};
pub use elongation::ElongatedPrimer;
pub use library::PrimerLibrary;
pub use multiplex::{cross_dimer_score, MultiplexCompat};
pub use pair::PrimerPair;
