//! Mutually-compatible primer library search.
//!
//! §1: "the largest set of primers found so far to meet such requirements
//! contains only between ∼1000-3000 primers" at length 20, and "the number
//! of compatible primers scales approximately linearly with the primer
//! length" (~10K at length 30). The `scaling` experiment regenerates that
//! curve with this greedy random packing.

use crate::PrimerConstraints;
use dna_seq::distance::hamming_bounded;
use dna_seq::rng::DetRng;
use dna_seq::{Base, DnaSeq};

/// A set of primers that all satisfy a [`PrimerConstraints`] and are
/// pairwise at least `min_distance` apart in Hamming distance — including
/// against each other's reverse complements, so no primer can anneal to
/// another primer's binding site.
#[derive(Debug, Clone)]
pub struct PrimerLibrary {
    primers: Vec<DnaSeq>,
    min_distance: usize,
    attempts_used: usize,
}

impl PrimerLibrary {
    /// Greedily packs up to `target` primers by random candidate generation,
    /// spending at most `max_attempts` candidates. Deterministic for a given
    /// `seed`.
    ///
    /// The default minimum pairwise distance is `length / 2` — the
    /// "significantly different from each other in Hamming distance"
    /// requirement of §1 (Organick et al. use comparable thresholds).
    pub fn generate(
        constraints: &PrimerConstraints,
        target: usize,
        max_attempts: usize,
        seed: u64,
    ) -> PrimerLibrary {
        Self::generate_with_distance(
            constraints,
            constraints.length / 2,
            target,
            max_attempts,
            seed,
        )
    }

    /// As [`PrimerLibrary::generate`] with an explicit distance threshold.
    pub fn generate_with_distance(
        constraints: &PrimerConstraints,
        min_distance: usize,
        target: usize,
        max_attempts: usize,
        seed: u64,
    ) -> PrimerLibrary {
        let mut rng = DetRng::seed_from_u64(seed);
        let mut primers: Vec<DnaSeq> = Vec::new();
        let mut rcs: Vec<DnaSeq> = Vec::new();
        let mut attempts = 0usize;
        while primers.len() < target && attempts < max_attempts {
            attempts += 1;
            let candidate = random_candidate(constraints.length, &mut rng);
            if constraints.validate(&candidate).is_err() {
                continue;
            }
            let rc = candidate.reverse_complement();
            let compatible = primers.iter().zip(&rcs).all(|(p, prc)| {
                hamming_bounded(candidate.as_slice(), p.as_slice(), min_distance - 1).is_none()
                    && hamming_bounded(candidate.as_slice(), prc.as_slice(), min_distance - 1)
                        .is_none()
                    && hamming_bounded(rc.as_slice(), p.as_slice(), min_distance - 1).is_none()
            });
            if compatible {
                primers.push(candidate);
                rcs.push(rc);
            }
        }
        PrimerLibrary {
            primers,
            min_distance,
            attempts_used: attempts,
        }
    }

    /// The primers found.
    pub fn primers(&self) -> &[DnaSeq] {
        &self.primers
    }

    /// Number of primers found.
    pub fn len(&self) -> usize {
        self.primers.len()
    }

    /// `true` if the search found nothing.
    pub fn is_empty(&self) -> bool {
        self.primers.is_empty()
    }

    /// The enforced minimum pairwise Hamming distance.
    pub fn min_distance(&self) -> usize {
        self.min_distance
    }

    /// How many random candidates the search consumed.
    pub fn attempts_used(&self) -> usize {
        self.attempts_used
    }

    /// Returns primer `i`, panicking if out of range.
    pub fn primer(&self, i: usize) -> &DnaSeq {
        &self.primers[i]
    }
}

/// Random GC-alternating-biased candidate: pure uniform sampling wastes most
/// attempts on GC/homopolymer rejects, so we sample with a light structural
/// bias (still covering the whole constraint-satisfying space).
fn random_candidate(length: usize, rng: &mut DetRng) -> DnaSeq {
    let mut seq = DnaSeq::with_capacity(length);
    let mut prev: Option<Base> = None;
    let mut run = 0usize;
    for _ in 0..length {
        loop {
            let b = Base::from_code(rng.gen_range(4) as u8);
            if Some(b) == prev && run >= 2 {
                continue; // would create a run of 3+ too often
            }
            if Some(b) == prev {
                run += 1;
            } else {
                run = 1;
            }
            prev = Some(b);
            seq.push(b);
            break;
        }
    }
    seq
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_seq::distance::hamming;

    #[test]
    fn library_respects_pairwise_distance() {
        let c = PrimerConstraints::paper_default(20);
        let lib = PrimerLibrary::generate(&c, 12, 50_000, 7);
        assert_eq!(lib.len(), 12);
        for i in 0..lib.len() {
            for j in (i + 1)..lib.len() {
                let d = hamming(lib.primer(i).as_slice(), lib.primer(j).as_slice());
                assert!(d >= lib.min_distance(), "{i},{j}: {d}");
                let drc = hamming(
                    lib.primer(i).as_slice(),
                    lib.primer(j).reverse_complement().as_slice(),
                );
                assert!(drc >= lib.min_distance(), "rc {i},{j}: {drc}");
            }
        }
    }

    #[test]
    fn all_members_satisfy_constraints() {
        let c = PrimerConstraints::paper_default(20);
        let lib = PrimerLibrary::generate(&c, 10, 50_000, 8);
        for p in lib.primers() {
            c.validate(p).unwrap();
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let c = PrimerConstraints::paper_default(20);
        let a = PrimerLibrary::generate(&c, 5, 20_000, 9);
        let b = PrimerLibrary::generate(&c, 5, 20_000, 9);
        assert_eq!(a.primers(), b.primers());
    }

    #[test]
    fn attempt_budget_respected() {
        let c = PrimerConstraints::paper_default(20);
        // Impossible demand with a tiny budget: should stop at the budget.
        let lib = PrimerLibrary::generate_with_distance(&c, 18, 10_000, 100, 10);
        assert!(lib.attempts_used() <= 100);
        assert!(lib.len() < 10_000);
    }

    #[test]
    fn longer_primers_pack_more_at_same_relative_distance() {
        // The §1 scaling observation, miniature version: with distance = L/2,
        // length 30 should admit at least as many primers as length 20 under
        // the same attempt budget.
        let c20 = PrimerConstraints::paper_default(20);
        let c30 = PrimerConstraints::paper_default(30);
        let lib20 = PrimerLibrary::generate(&c20, usize::MAX, 4_000, 11);
        let lib30 = PrimerLibrary::generate(&c30, usize::MAX, 4_000, 11);
        assert!(
            lib30.len() >= lib20.len(),
            "len30 {} < len20 {}",
            lib30.len(),
            lib20.len()
        );
    }
}
