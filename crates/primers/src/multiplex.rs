//! Multiplex-PCR compatibility checks.
//!
//! Batching several primer pairs into one PCR tube (one *multiplex round*)
//! is the paper's key cost lever: the wetlab work of a reaction is amortized
//! across every target it amplifies. But primers only coexist safely when
//! they cannot prime *each other* (cross-dimers — a primer's 3' end
//! annealing to another primer and being extended by the polymerase wastes
//! budget and spawns artifact species) and when their melting temperatures
//! are close enough that one annealing schedule serves all of them (a pair
//! whose Tm sits far below the tube's annealing temperature simply never
//! binds; far above, it binds promiscuously).
//!
//! [`MultiplexCompat`] packages both checks so a batch planner can ask
//! "may these partitions share a tube?" without knowing any chemistry.

use crate::pair::PrimerPair;
use dna_seq::tm::melting_temperature;
use dna_seq::DnaSeq;

/// Length of the longest run at `a`'s 3' terminus whose reverse complement
/// occurs anywhere in `b` — the classic primer-dimer geometry: `a`'s 3' end
/// anneals to `b` and the polymerase extends it.
///
/// Symmetric use (`max(score(a,b), score(b,a))`) is provided by
/// [`cross_dimer_score`].
fn three_prime_overlap(a: &DnaSeq, b: &DnaSeq) -> usize {
    let n = a.len();
    let mut best = 0;
    for k in (1..=n).rev() {
        let tail = a.subseq(n - k..n);
        let rc = tail.reverse_complement();
        if b.find(&rc, 0).is_some() {
            best = k;
            break;
        }
    }
    best
}

/// Cross-dimer propensity of two primers: the longest 3'-terminal run of
/// either primer that can anneal (reverse-complement match) anywhere on the
/// other.
///
/// # Examples
///
/// ```
/// use dna_primers::cross_dimer_score;
/// use dna_seq::DnaSeq;
///
/// let a: DnaSeq = "AACCGGTTAACCGGTTAACC".parse().unwrap();
/// // b ends with the reverse complement of a's 3' tail "GGTTAACC".
/// let b: DnaSeq = "ACACACACACACGGTTAACC".parse().unwrap();
/// assert!(cross_dimer_score(&a, &b) >= 8);
/// ```
pub fn cross_dimer_score(a: &DnaSeq, b: &DnaSeq) -> usize {
    three_prime_overlap(a, b).max(three_prime_overlap(b, a))
}

/// Compatibility constraints for primers sharing one multiplex tube.
///
/// The defaults mirror the single-primer design constraints: the same
/// hairpin-scale cutoff (5 bases) for cross-dimers, and a Tm window wide
/// enough to admit the library's design range (§2.1.4 anneals all main
/// primers with one touchdown schedule).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiplexCompat {
    /// Maximum tolerated cross-dimer score between any two primers in the
    /// tube.
    pub max_cross_dimer: usize,
    /// Maximum spread (°C) between the lowest and highest primer Tm in the
    /// tube.
    pub tm_window: f64,
}

impl MultiplexCompat {
    /// Paper-grade defaults: cross-dimer overlap capped at 5 (the hairpin
    /// threshold of [`crate::PrimerConstraints::paper_default`]) and a
    /// 10 °C Tm window (the §6.5 touchdown schedule sweeps 65→55 °C, so
    /// primers within ~10 °C of each other all get cycles near their
    /// optimum).
    pub fn paper_default() -> MultiplexCompat {
        MultiplexCompat {
            max_cross_dimer: 5,
            tm_window: 10.0,
        }
    }

    /// `true` when the two primers may share a tube: no long cross-dimer
    /// and Tm within the window.
    pub fn primers_compatible(&self, a: &DnaSeq, b: &DnaSeq) -> bool {
        if cross_dimer_score(a, b) > self.max_cross_dimer {
            return false;
        }
        (melting_temperature(a) - melting_temperature(b)).abs() <= self.tm_window
    }

    /// `true` when every primer of `a` may coexist with every primer of `b`
    /// (all four forward/reverse combinations checked).
    pub fn pairs_compatible(&self, a: &PrimerPair, b: &PrimerPair) -> bool {
        let pa = [a.forward(), a.reverse()];
        let pb = [b.forward(), b.reverse()];
        pa.iter()
            .all(|x| pb.iter().all(|y| self.primers_compatible(x, y)))
    }

    /// `true` when `candidate` may join a tube already holding `tube`.
    /// A pair identical to a tube member is trivially admissible (it is
    /// already co-resident with itself — e.g. a shared log partition's
    /// pair appearing via two different batch items).
    pub fn compatible_with_all<'a>(
        &self,
        candidate: &PrimerPair,
        tube: impl IntoIterator<Item = &'a PrimerPair>,
    ) -> bool {
        tube.into_iter()
            .all(|member| member == candidate || self.pairs_compatible(candidate, member))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(text: &str) -> DnaSeq {
        text.parse().unwrap()
    }

    #[test]
    fn disjoint_primers_have_low_dimer_score() {
        // Alternating weak/strong with different phases: no long
        // complementary runs.
        let a = s("AACCGGTTAACCGGTTAACC");
        let b = s("CAGTCAGTCAGTCAGTCAGT");
        assert!(
            cross_dimer_score(&a, &b) <= 5,
            "{}",
            cross_dimer_score(&a, &b)
        );
    }

    #[test]
    fn engineered_dimer_is_detected() {
        let a = s("AACCGGTTAACCGGTTAACC");
        // Embed the reverse complement of a's last 8 bases mid-sequence.
        let tail_rc = a.subseq(12..20).reverse_complement();
        let mut b = s("CAGTCAGTCAGT");
        b.extend_from_slice(tail_rc.as_slice());
        assert!(cross_dimer_score(&a, &b) >= 8);
        assert!(!MultiplexCompat::paper_default().primers_compatible(&a, &b));
    }

    #[test]
    fn score_is_symmetric() {
        let a = s("AACCGGTTAACCGGTTAACC");
        let b = s("CATGCATGCATGCATGGTTA");
        assert_eq!(cross_dimer_score(&a, &b), cross_dimer_score(&b, &a));
    }

    #[test]
    fn tm_window_enforced() {
        // AT-rich vs GC-rich 20-mers: Tm differs by ~20 °C (Marmur–Doty
        // moves ~2 °C per GC base at this length).
        let cold = s("ATTATATAGCATTATATAGC"); // 4 GC
        let hot = s("GGCGCGCGTAGGCGCGCGTA"); // 16 GC
        let compat = MultiplexCompat::paper_default();
        assert!(!compat.primers_compatible(&cold, &hot));
        assert!((melting_temperature(&cold) - melting_temperature(&hot)).abs() > 10.0);
        // Tm never separates a sequence from itself: self-compatibility is
        // decided purely by the cross-dimer score.
        let mild = s("AACCGGTTAACCGGTTAACC");
        assert_eq!(
            compat.primers_compatible(&mild, &mild),
            cross_dimer_score(&mild, &mild) <= compat.max_cross_dimer
        );
    }

    #[test]
    fn pair_and_set_checks_compose() {
        let a = PrimerPair::new(s("AACCGGTTAACCGGTTAACC"), s("AAGGCCTTAAGGCCTTAAGG"));
        let b = PrimerPair::new(s("CAGTGACTCAGTGACTCAGT"), s("GTCAGTCAGTCAGTCAGTCA"));
        let compat = MultiplexCompat {
            max_cross_dimer: 19,
            tm_window: 30.0,
        };
        assert!(compat.pairs_compatible(&a, &b));
        assert!(compat.compatible_with_all(&a, [&b]));
        assert!(compat.compatible_with_all(&a, std::iter::empty()));
        let strict = MultiplexCompat {
            max_cross_dimer: 0,
            tm_window: 30.0,
        };
        assert!(!strict.pairs_compatible(&a, &b));
    }
}
