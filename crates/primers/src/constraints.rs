//! Primer validity constraints (§2.1.4, §6.5).

use dna_seq::analysis::hairpin_score;
use dna_seq::tm::melting_temperature;
use dna_seq::DnaSeq;
use std::error::Error;
use std::fmt;

/// Why a candidate primer was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum PrimerViolation {
    /// Wrong length.
    Length {
        /// Expected length.
        expected: usize,
        /// Actual length.
        got: usize,
    },
    /// GC fraction outside the allowed window.
    GcOutOfRange {
        /// Observed GC fraction.
        gc: f64,
        /// Allowed window.
        window: (f64, f64),
    },
    /// Homopolymer run longer than allowed.
    Homopolymer {
        /// Observed longest run.
        run: usize,
        /// Maximum allowed.
        max: usize,
    },
    /// Melting temperature outside the allowed window.
    TmOutOfRange {
        /// Estimated Tm in °C.
        tm: f64,
        /// Allowed window.
        window: (f64, f64),
    },
    /// Self-complementary head/tail long enough to form a hairpin.
    Hairpin {
        /// Observed self-complementary overlap.
        score: usize,
        /// Maximum allowed.
        max: usize,
    },
}

impl fmt::Display for PrimerViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrimerViolation::Length { expected, got } => {
                write!(f, "length {got}, expected {expected}")
            }
            PrimerViolation::GcOutOfRange { gc, window } => {
                write!(f, "gc {:.2} outside [{:.2}, {:.2}]", gc, window.0, window.1)
            }
            PrimerViolation::Homopolymer { run, max } => {
                write!(f, "homopolymer run {run} exceeds {max}")
            }
            PrimerViolation::TmOutOfRange { tm, window } => {
                write!(f, "tm {:.1} outside [{:.1}, {:.1}]", tm, window.0, window.1)
            }
            PrimerViolation::Hairpin { score, max } => {
                write!(f, "hairpin score {score} exceeds {max}")
            }
        }
    }
}

impl Error for PrimerViolation {}

/// Constraint set for main-primer candidates.
///
/// The defaults follow the paper's reported properties: "The GC content of
/// all primers is between 48-52%" (§6.5) is what the *selected* primers
/// achieved; the design window here is the standard 40–60% with Tm in the
/// 48–68 °C annealing range (§2.1.4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrimerConstraints {
    /// Required primer length (paper: 20 for main primers).
    pub length: usize,
    /// GC fraction window.
    pub gc_window: (f64, f64),
    /// Maximum homopolymer run.
    pub max_homopolymer: usize,
    /// Melting temperature window (°C).
    pub tm_window: (f64, f64),
    /// Maximum hairpin (self-complementary overlap) score.
    pub max_hairpin: usize,
}

impl PrimerConstraints {
    /// Standard constraints for main primers of the given length.
    pub fn paper_default(length: usize) -> PrimerConstraints {
        PrimerConstraints {
            length,
            gc_window: (0.40, 0.60),
            max_homopolymer: 3,
            tm_window: (45.0, 68.0),
            max_hairpin: 5,
        }
    }

    /// Validates a candidate, returning the first violation found.
    ///
    /// # Errors
    ///
    /// Returns the first [`PrimerViolation`] discovered, checking length,
    /// GC, homopolymers, Tm, then hairpin.
    pub fn validate(&self, primer: &DnaSeq) -> Result<(), PrimerViolation> {
        if primer.len() != self.length {
            return Err(PrimerViolation::Length {
                expected: self.length,
                got: primer.len(),
            });
        }
        let gc = primer.gc_fraction();
        if gc < self.gc_window.0 || gc > self.gc_window.1 {
            return Err(PrimerViolation::GcOutOfRange {
                gc,
                window: self.gc_window,
            });
        }
        let run = primer.max_homopolymer();
        if run > self.max_homopolymer {
            return Err(PrimerViolation::Homopolymer {
                run,
                max: self.max_homopolymer,
            });
        }
        let tm = melting_temperature(primer);
        if tm < self.tm_window.0 || tm > self.tm_window.1 {
            return Err(PrimerViolation::TmOutOfRange {
                tm,
                window: self.tm_window,
            });
        }
        let score = hairpin_score(primer);
        if score > self.max_hairpin {
            return Err(PrimerViolation::Hairpin {
                score,
                max: self.max_hairpin,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(text: &str) -> DnaSeq {
        text.parse().unwrap()
    }

    #[test]
    fn balanced_primer_passes() {
        let c = PrimerConstraints::paper_default(20);
        // 50% GC, max run 2, no self-complementary head/tail.
        assert!(c.validate(&s("AACCGGTTAACCGGTTAACC")).is_ok());
    }

    #[test]
    fn palindromic_primer_fails_hairpin() {
        // ACGT repeats are reverse-complement palindromes — classic hairpin.
        let c = PrimerConstraints::paper_default(20);
        assert!(matches!(
            c.validate(&s("ACGTACGTACGTACGTACGT")),
            Err(PrimerViolation::Hairpin { .. })
        ));
    }

    #[test]
    fn length_checked_first() {
        let c = PrimerConstraints::paper_default(20);
        assert!(matches!(
            c.validate(&s("ACGT")),
            Err(PrimerViolation::Length {
                expected: 20,
                got: 4
            })
        ));
    }

    #[test]
    fn gc_window_enforced() {
        let c = PrimerConstraints::paper_default(20);
        assert!(matches!(
            c.validate(&s("AATTAATTAATTAATTAATT")),
            Err(PrimerViolation::GcOutOfRange { .. })
        ));
        assert!(matches!(
            c.validate(&s("GGCCGGCCGGCCGGCCGGCC")),
            Err(PrimerViolation::GcOutOfRange { .. })
        ));
    }

    #[test]
    fn homopolymers_rejected() {
        let c = PrimerConstraints::paper_default(20);
        // 50% GC but a long run
        assert!(matches!(
            c.validate(&s("GGGGGATATATCACACTCTC")),
            Err(PrimerViolation::Homopolymer { run: 5, max: 3 })
        ));
    }

    #[test]
    fn hairpin_rejected() {
        let c = PrimerConstraints::paper_default(20);
        // 10-base head whose reverse complement equals the tail
        let head = s("ACGTTGCAAC");
        let tail = head.reverse_complement();
        let hp = head.concat(&tail);
        assert_eq!(hp.len(), 20);
        assert!(matches!(
            c.validate(&hp),
            Err(PrimerViolation::Hairpin { .. })
        ));
    }

    #[test]
    fn violations_display() {
        let v = PrimerViolation::GcOutOfRange {
            gc: 0.9,
            window: (0.4, 0.6),
        };
        assert!(v.to_string().contains("gc 0.90"));
    }
}
