//! Deterministic multi-threaded stress/soak suite for the serving layer.
//!
//! N client threads drive one shared [`StoreServer`] with seeded
//! read/update mixes. The harness is built so every assertion is
//! *interleaving-independent* while the workload itself is a pure function
//! of the seed:
//!
//! - **Single writer per block**: thread `t` updates only its own
//!   partition, round-robin over its blocks, so each block's version
//!   sequence (and therefore the final image) is deterministic for a fixed
//!   seed no matter how the threads interleave.
//! - **Versioned images**: every block content embeds
//!   `(partition, block, version)` plus seeded filler, so a read can be
//!   checked byte-for-byte against the exact image of the version it
//!   claims to be — a torn or stale read cannot pass.
//! - **Started/completed clocks**: writers publish a version's number
//!   before and after committing it; a reader brackets its request with
//!   both counters and asserts the observed version lies in
//!   `[completed-before, started-after]` — i.e. every read observes either
//!   the pre- or the post-update image of any concurrent update, never a
//!   torn or stale one.
//!
//! The suite runs the same harness across three seeds (the acceptance
//! bar), checks the server's stats contract (`stale_serves == 0`,
//! `cache_hits + cache_misses == reads_served`, update accounting), proves
//! reproducibility by replaying the op plans digitally and comparing final
//! images, and pins the warm-cache guarantee: re-reading a cached block
//! executes zero wetlab rounds.

use dna_storage::block_store::{
    workload, BatchWindow, BlockStore, CachePolicy, PartitionConfig, PartitionId, ServerConfig,
    StoreServer, BLOCK_SIZE,
};
use dna_storage::seq::rng::DetRng;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

/// Client threads (= partitions; thread `t` is the single writer of
/// partition `t`). CI runs this suite in release with this fixed count.
const CLIENT_THREADS: usize = 4;
/// Blocks per partition.
const BLOCKS: u64 = 3;
/// Operations per client thread (smaller in debug so the tier-1 run stays
/// fast; CI exercises the full mix in release).
#[cfg(debug_assertions)]
const OPS_PER_THREAD: usize = 6;
#[cfg(not(debug_assertions))]
const OPS_PER_THREAD: usize = 14;

/// One client operation. Plans are pure functions of `(seed, thread)` so
/// the digital replay can recompute exactly what each thread did.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    /// Read one block (any partition).
    Read { part: usize, block: u64 },
    /// Update the next round-robin block of the thread's own partition.
    Update,
    /// Read a whole partition as a range.
    ReadRange { part: usize },
}

fn plan_ops(seed: u64, thread: usize) -> Vec<Op> {
    let mut rng = DetRng::seed_from_u64(seed ^ 0x57E5).derive(thread as u64);
    (0..OPS_PER_THREAD)
        .map(|_| {
            // Draw in fixed order so the plan is reproducible.
            let part = rng.gen_range(CLIENT_THREADS);
            let block = rng.gen_range(BLOCKS as usize) as u64;
            match rng.gen_range(100) {
                0..=54 => Op::Read { part, block },
                55..=79 => Op::Update,
                _ => Op::ReadRange { part },
            }
        })
        .collect()
}

/// The unique byte image of `(part, block)` at `version`: a sentinel +
/// address + version stamp over seeded filler. Successive versions differ
/// only in the 4 version bytes, so each update is one small patch.
fn block_image(seed: u64, part: usize, block: u64, version: u32) -> Vec<u8> {
    let mut data =
        workload::deterministic_text(BLOCK_SIZE, seed ^ (part as u64 * 131 + block * 17 + 0xCAFE));
    data[0] = 0xB5;
    data[1] = part as u8;
    data[2] = block as u8;
    data[3..7].copy_from_slice(&version.to_le_bytes());
    data
}

/// Extracts the version stamp, verifying the address bytes.
fn parse_version(part: usize, block: u64, data: &[u8]) -> u32 {
    assert_eq!(data[0], 0xB5, "sentinel byte");
    assert_eq!(data[1], part as u8, "partition stamp");
    assert_eq!(data[2], block as u8, "block stamp");
    u32::from_le_bytes(data[3..7].try_into().unwrap())
}

/// Per-block version clocks: a writer stores `version` into `started`
/// before committing the update and into `completed` after.
#[derive(Default)]
struct VersionClock {
    started: AtomicU32,
    completed: AtomicU32,
}

/// Reads one block through the server and asserts it observes a
/// consistent, untorn image: version within `[completed-before,
/// started-after]` and bytes exactly equal to that version's image.
fn check_read(
    server: &StoreServer,
    clocks: &[Vec<VersionClock>],
    pids: &[PartitionId],
    seed: u64,
    part: usize,
    block: u64,
) {
    let clock = &clocks[part][block as usize];
    let lo = clock.completed.load(Ordering::SeqCst);
    let served = server.read_block(pids[part], block).unwrap();
    let hi = clock.started.load(Ordering::SeqCst);
    let version = parse_version(part, block, &served.block.data);
    assert!(
        (lo..=hi).contains(&version),
        "stale or future read: part {part} block {block} observed v{version}, \
         committed-before v{lo}, started-after v{hi}"
    );
    assert_eq!(
        served.block.data,
        block_image(seed, part, block, version),
        "torn read: part {part} block {block} does not match image v{version}"
    );
}

/// Final version of each block after a plan completes: update `n`
/// (0-based) targets block `n % BLOCKS` with version `n / BLOCKS + 1`.
fn expected_final_versions(plans: &[Vec<Op>]) -> Vec<Vec<u32>> {
    plans
        .iter()
        .map(|plan| {
            let updates = plan.iter().filter(|op| matches!(op, Op::Update)).count() as u32;
            (0..BLOCKS as u32)
                .map(|b| {
                    if updates > b {
                        (updates - b - 1) / BLOCKS as u32 + 1
                    } else {
                        0
                    }
                })
                .collect()
        })
        .collect()
}

/// Runs the full stress harness for one seed and returns the final block
/// images observed through the server.
fn run_stress(seed: u64) -> Vec<Vec<Vec<u8>>> {
    let config = ServerConfig {
        cache_capacity: 64,
        cache_policy: CachePolicy::Invalidate,
        window: BatchWindow::Window(Duration::from_millis(1)),
        ..ServerConfig::paper_default()
    };
    let server = StoreServer::new(BlockStore::new(seed), config);
    let mut pids = Vec::new();
    for part in 0..CLIENT_THREADS {
        let pid = server
            .create_partition(PartitionConfig::paper_default(seed ^ (0x600 + part as u64)))
            .unwrap();
        let mut initial = Vec::new();
        for block in 0..BLOCKS {
            initial.extend_from_slice(&block_image(seed, part, block, 0));
        }
        server.write_file(pid, &initial).unwrap();
        pids.push(pid);
    }
    let clocks: Vec<Vec<VersionClock>> = (0..CLIENT_THREADS)
        .map(|_| (0..BLOCKS).map(|_| VersionClock::default()).collect())
        .collect();
    let plans: Vec<Vec<Op>> = (0..CLIENT_THREADS).map(|t| plan_ops(seed, t)).collect();

    std::thread::scope(|scope| {
        for (thread, plan) in plans.iter().enumerate() {
            let (server, clocks, pids) = (&server, &clocks, &pids);
            scope.spawn(move || {
                let mut own_updates = 0u32;
                for op in plan {
                    match *op {
                        Op::Read { part, block } => {
                            check_read(server, clocks, pids, seed, part, block);
                        }
                        Op::Update => {
                            let block = u64::from(own_updates) % BLOCKS;
                            let version = own_updates / BLOCKS as u32 + 1;
                            let clock = &clocks[thread][block as usize];
                            clock.started.store(version, Ordering::SeqCst);
                            server
                                .update_block(
                                    pids[thread],
                                    block,
                                    &block_image(seed, thread, block, version),
                                )
                                .unwrap();
                            clock.completed.store(version, Ordering::SeqCst);
                            own_updates += 1;
                        }
                        Op::ReadRange { part } => {
                            let lows: Vec<u32> = (0..BLOCKS as usize)
                                .map(|b| clocks[part][b].completed.load(Ordering::SeqCst))
                                .collect();
                            let range = server.read_range(pids[part], 0, BLOCKS - 1).unwrap();
                            assert_eq!(range.len(), BLOCKS as usize);
                            for (b, served) in range.iter().enumerate() {
                                let hi = clocks[part][b].started.load(Ordering::SeqCst);
                                let version = parse_version(part, b as u64, &served.block.data);
                                assert!(
                                    (lows[b]..=hi).contains(&version),
                                    "range read part {part} block {b}: v{version} outside \
                                     [{}, {hi}]",
                                    lows[b]
                                );
                                assert_eq!(
                                    served.block.data,
                                    block_image(seed, part, b as u64, version),
                                    "torn range read part {part} block {b}"
                                );
                            }
                        }
                    }
                }
            });
        }
    });

    // ---- stats contract -------------------------------------------------
    let stats = server.stats();
    let reads_issued: u64 = plans
        .iter()
        .flatten()
        .map(|op| match op {
            Op::Read { .. } => 1,
            Op::ReadRange { .. } => BLOCKS,
            Op::Update => 0,
        })
        .sum();
    let updates_issued = plans
        .iter()
        .flatten()
        .filter(|op| matches!(op, Op::Update))
        .count() as u64;
    assert_eq!(stats.stale_serves, 0, "stale serves: {stats:?}");
    assert_eq!(stats.reads_served, reads_issued, "{stats:?}");
    assert_eq!(
        stats.cache_hits + stats.cache_misses,
        stats.reads_served,
        "hit/miss accounting: {stats:?}"
    );
    assert_eq!(stats.updates_applied, updates_issued, "{stats:?}");
    if stats.cache_misses > 0 {
        assert!(stats.batches_executed > 0);
        assert!(stats.rounds_executed > 0);
    }

    // ---- reproducibility: digital replay --------------------------------
    // The final version of every block is a pure function of the seed;
    // the clocks (what the writers actually did) must match the replay,
    // and the server must serve exactly those images.
    let expected = expected_final_versions(&plans);
    let mut finals = Vec::new();
    for part in 0..CLIENT_THREADS {
        let mut images = Vec::new();
        for block in 0..BLOCKS {
            let version = expected[part][block as usize];
            assert_eq!(
                clocks[part][block as usize]
                    .completed
                    .load(Ordering::SeqCst),
                version,
                "writer clock diverged from digital replay (part {part} block {block})"
            );
            let served = server.read_block(pids[part], block).unwrap();
            let image = block_image(seed, part, block, version);
            assert_eq!(
                served.block.data, image,
                "final image part {part} block {block} not reproducible"
            );
            images.push(image);
        }
        finals.push(images);
    }

    // ---- warm-cache guarantee -------------------------------------------
    // Every block is now cached (12 blocks <= capacity 64); re-reading the
    // whole store must execute zero additional wetlab rounds.
    let warm_before = server.stats();
    for (part, &pid) in pids.iter().enumerate() {
        for block in 0..BLOCKS {
            let served = server.read_block(pid, block).unwrap();
            assert!(served.from_cache, "part {part} block {block} not cached");
        }
    }
    let warm_after = server.stats();
    assert_eq!(
        warm_after.rounds_executed, warm_before.rounds_executed,
        "warm re-reads must execute 0 wetlab rounds"
    );
    assert_eq!(
        warm_after.cache_misses, warm_before.cache_misses,
        "warm re-reads must not miss"
    );
    assert_eq!(warm_after.stale_serves, 0);

    finals
}

#[test]
fn stress_mixed_traffic_seed_1() {
    run_stress(0xA1);
}

#[test]
fn stress_mixed_traffic_seed_2() {
    run_stress(0xB2);
}

#[test]
fn stress_mixed_traffic_seed_3() {
    run_stress(0xC3);
}

/// Soak: a hot-block read storm from every thread against one partition.
/// After the first decode the block is warm — the server must serve the
/// storm almost entirely from cache, never stale, and the wetlab round
/// count must stay bounded by the misses (not the requests).
#[test]
fn soak_hot_block_storm_is_cache_bound() {
    let seed = 0xD4;
    let config = ServerConfig {
        cache_capacity: 8,
        window: BatchWindow::Window(Duration::from_millis(1)),
        ..ServerConfig::paper_default()
    };
    let server = StoreServer::new(BlockStore::new(seed), config);
    let pid = server
        .create_partition(PartitionConfig::paper_default(0x700))
        .unwrap();
    server.write_file(pid, &block_image(seed, 0, 0, 0)).unwrap();

    let storm = OPS_PER_THREAD * 4;
    std::thread::scope(|scope| {
        for _ in 0..CLIENT_THREADS {
            let server = &server;
            scope.spawn(move || {
                for _ in 0..storm {
                    let served = server.read_block(pid, 0).unwrap();
                    assert_eq!(parse_version(0, 0, &served.block.data), 0);
                    assert_eq!(served.block.data, block_image(seed, 0, 0, 0));
                }
            });
        }
    });
    let stats = server.stats();
    let total = (CLIENT_THREADS * storm) as u64;
    assert_eq!(stats.reads_served, total);
    assert_eq!(stats.stale_serves, 0);
    assert_eq!(stats.cache_hits + stats.cache_misses, total);
    // Every miss happened before the first decode landed in the cache:
    // misses are bounded by the thread count, not the request count.
    assert!(
        stats.cache_misses <= CLIENT_THREADS as u64,
        "hot block missed {} times",
        stats.cache_misses
    );
    assert!(stats.cache_hits >= total - CLIENT_THREADS as u64);
    // Wetlab cost follows misses (coalesced into at most `misses` rounds).
    assert!(
        stats.rounds_executed <= stats.cache_misses,
        "rounds {} exceed misses {}",
        stats.rounds_executed,
        stats.cache_misses
    );
}

// ---------------------------------------------------------------------------
// Sharded-store lock-order stress: every layout, cross-shard maintenance,
// ≥8 threads.
// ---------------------------------------------------------------------------

/// Partition layouts for the shard storm: two of each §5.3 layout, so the
/// storm exercises in-shard commits (Interleaved), region reads
/// (TwoStacks) and the cross-shard shared log (DedicatedLog) at once.
const STORM_LAYOUTS: [dna_storage::block_store::UpdateLayout; 6] = {
    use dna_storage::block_store::UpdateLayout;
    [
        UpdateLayout::Interleaved { update_slots: 3 },
        UpdateLayout::TwoStacks,
        UpdateLayout::DedicatedLog,
        UpdateLayout::Interleaved { update_slots: 2 },
        UpdateLayout::TwoStacks,
        UpdateLayout::DedicatedLog,
    ]
};
const STORM_THREADS: usize = 8;
const STORM_BLOCKS: u64 = 2;
#[cfg(debug_assertions)]
const STORM_OPS: usize = 4;
#[cfg(not(debug_assertions))]
const STORM_OPS: usize = 10;

/// Deadlock-freedom and coherence storm for the sharded store: 8 client
/// threads fire a seeded mix of single reads, range reads, single-writer
/// updates and store-wide maintenance passes (which take the documented
/// multi-shard lock order: DedicatedLog shards ascending, log shard last)
/// at one server over six partitions spanning all three layouts.
///
/// The assertions are interleaving-independent:
/// - the storm *finishes* (no deadlock under the global lock order);
/// - every operation succeeds (compaction never tears a read; a read
///   never observes a half-committed update);
/// - `stale_serves == 0` and the stats identities hold;
/// - afterwards, every block's wetlab read equals the store's §5.4
///   digital oracle byte for byte.
#[test]
fn shard_storm_mixed_ops_all_layouts() {
    let seed = 0x51A6;
    let config = ServerConfig {
        cache_capacity: 16,
        cache_policy: CachePolicy::Invalidate,
        window: BatchWindow::Window(Duration::from_micros(300)),
        ..ServerConfig::paper_default()
    };
    let server = StoreServer::new(BlockStore::new(seed), config);
    let mut pids = Vec::new();
    for (i, layout) in STORM_LAYOUTS.into_iter().enumerate() {
        let pid = server
            .create_partition(PartitionConfig::small(seed ^ (0x60 + i as u64), 3, layout))
            .unwrap();
        let data = workload::deterministic_text(
            STORM_BLOCKS as usize * BLOCK_SIZE,
            seed ^ (0x70 + i as u64),
        );
        server.write_file(pid, &data).unwrap();
        pids.push(pid);
    }
    let parts = pids.len();
    std::thread::scope(|scope| {
        for t in 0..STORM_THREADS {
            let server = &server;
            let pids = &pids;
            scope.spawn(move || {
                let mut rng = DetRng::seed_from_u64(0x5702 + seed).derive(t as u64);
                // Threads 0..parts are the single writers of their own
                // partition; the rest only read / run maintenance.
                let own = (t < parts).then_some(t);
                let mut edit = 0u8;
                for op in 0..STORM_OPS {
                    let p = rng.gen_range(parts);
                    let b = rng.gen_range(STORM_BLOCKS as usize) as u64;
                    match (rng.gen_range(100), own) {
                        (0..=44, _) => {
                            server.read_block(pids[p], b).unwrap_or_else(|e| {
                                panic!("thread {t} op {op}: read({p},{b}): {e}")
                            });
                        }
                        (45..=64, _) => {
                            server
                                .read_range(pids[p], 0, STORM_BLOCKS - 1)
                                .unwrap_or_else(|e| panic!("thread {t} op {op}: range({p}): {e}"));
                        }
                        (65..=89, Some(own)) => {
                            // Single writer: recompute this partition's
                            // current image from the oracle, flip a byte.
                            let current = server
                                .store()
                                .logical_block(pids[own], b)
                                .expect("own block written");
                            let mut next = current.data.to_vec();
                            edit = edit.wrapping_add(1);
                            next[usize::from(edit % 8)] = b'a' + (edit % 26);
                            server
                                .update_block(pids[own], b, &next)
                                .unwrap_or_else(|e| {
                                    panic!("thread {t} op {op}: update({own},{b}): {e}")
                                });
                        }
                        _ => {
                            // Cross-shard maintenance under load: takes
                            // the multi-shard lock order (data shards
                            // ascending, log last).
                            server
                                .run_maintenance()
                                .unwrap_or_else(|e| panic!("thread {t} op {op}: maintenance: {e}"));
                        }
                    }
                }
            });
        }
    });
    // Stats contract under arbitrary interleavings.
    let stats = server.stats();
    assert_eq!(stats.stale_serves, 0, "{stats:?}");
    assert_eq!(
        stats.reads_served,
        stats.cache_hits + stats.cache_misses,
        "{stats:?}"
    );
    // Every block still reads back byte-identical to the digital oracle —
    // through the wetlab, after all concurrent updates and compactions.
    for &pid in &pids {
        for b in 0..STORM_BLOCKS {
            let oracle = server.store().logical_block(pid, b).unwrap();
            let read = server.read_block(pid, b).unwrap();
            assert_eq!(
                read.block.data, oracle.data,
                "partition {pid:?} block {b} diverged from the oracle"
            );
        }
    }
    assert_eq!(server.stats().stale_serves, 0);
}
