//! Cross-crate integration tests: the full write → wetlab → decode paths.

use dna_storage::block_store::{
    workload, BlockStore, PartitionConfig, StoreError, UpdateLayout, BLOCK_SIZE,
};
use dna_storage::sim::{IdsChannel, Sequencer};

#[test]
fn multi_partition_isolation() {
    // Two partitions in one tube: reading from one never returns the
    // other's content (the primer pair is the chemical namespace).
    let store = BlockStore::new(100);
    let a = store
        .create_partition(PartitionConfig::paper_default(1))
        .unwrap();
    let b = store
        .create_partition(PartitionConfig::paper_default(2))
        .unwrap();
    let data_a = workload::deterministic_text(2 * BLOCK_SIZE, 10);
    let data_b = workload::deterministic_text(2 * BLOCK_SIZE, 20);
    store.write_file(a, &data_a).unwrap();
    store.write_file(b, &data_b).unwrap();
    let ra = store.read_block(a, 0).unwrap();
    let rb = store.read_block(b, 0).unwrap();
    assert_eq!(ra.block.data, &data_a[..BLOCK_SIZE]);
    assert_eq!(rb.block.data, &data_b[..BLOCK_SIZE]);
    assert_ne!(ra.block.data, rb.block.data);
}

#[test]
fn update_history_survives_many_edits() {
    // Seven updates: 2 direct slots, then the overflow chain (§5.3).
    let store = BlockStore::new(101);
    let pid = store
        .create_partition(PartitionConfig::paper_default(3))
        .unwrap();
    let data = workload::deterministic_text(BLOCK_SIZE, 30);
    store.write_file(pid, &data).unwrap();
    let mut current = data.clone();
    for i in 0..7u8 {
        current[i as usize] = b'0' + i;
        store.update_block(pid, 0, &current).unwrap();
    }
    let out = store.read_block(pid, 0).unwrap();
    assert_eq!(out.block.data, current);
    assert_eq!(out.patches_applied, 7);
    assert!(
        out.stats.pcr_rounds >= 2,
        "overflow chain needs extra rounds"
    );
}

#[test]
fn noisy_sequencer_still_round_trips() {
    // Failure injection: 4x the Illumina error rates.
    let mut store = BlockStore::new(102);
    store.set_sequencer(Sequencer::new(IdsChannel {
        sub_rate: 0.016,
        ins_rate: 0.002,
        del_rate: 0.004,
    }));
    store.set_coverage(20);
    let pid = store
        .create_partition(PartitionConfig::paper_default(4))
        .unwrap();
    let data = workload::deterministic_text(2 * BLOCK_SIZE, 40);
    store.write_file(pid, &data).unwrap();
    let out = store.read_block(pid, 1).unwrap();
    assert_eq!(out.block.data, &data[BLOCK_SIZE..]);
}

#[test]
fn all_layouts_round_trip_updates() {
    for layout in [
        UpdateLayout::paper_default(),
        UpdateLayout::TwoStacks,
        UpdateLayout::DedicatedLog,
    ] {
        let store = BlockStore::new(103);
        let mut cfg = PartitionConfig::paper_default(5);
        cfg.layout = layout;
        let pid = store.create_partition(cfg).unwrap();
        let data = workload::deterministic_text(3 * BLOCK_SIZE, 50);
        store.write_file(pid, &data).unwrap();
        let mut current = data.clone();
        current[BLOCK_SIZE] = b'X';
        store
            .update_block(pid, 1, &current[BLOCK_SIZE..2 * BLOCK_SIZE])
            .unwrap();
        let out = store.read_block(pid, 1).unwrap();
        assert_eq!(
            out.block.data,
            &current[BLOCK_SIZE..2 * BLOCK_SIZE],
            "layout {layout:?}"
        );
        assert_eq!(out.patches_applied, 1, "layout {layout:?}");
    }
}

#[test]
fn range_reads_see_updates() {
    let store = BlockStore::new(104);
    let pid = store
        .create_partition(PartitionConfig::paper_default(6))
        .unwrap();
    let data = workload::deterministic_text(6 * BLOCK_SIZE, 60);
    store.write_file(pid, &data).unwrap();
    let mut current = data.clone();
    current[3 * BLOCK_SIZE..3 * BLOCK_SIZE + 4].copy_from_slice(b"EDIT");
    store
        .update_block(pid, 3, &current[3 * BLOCK_SIZE..4 * BLOCK_SIZE])
        .unwrap();
    let blocks = store.read_range(pid, 2, 4).unwrap();
    assert_eq!(blocks[0].data, &current[2 * BLOCK_SIZE..3 * BLOCK_SIZE]);
    assert_eq!(blocks[1].data, &current[3 * BLOCK_SIZE..4 * BLOCK_SIZE]);
    assert_eq!(blocks[2].data, &current[4 * BLOCK_SIZE..5 * BLOCK_SIZE]);
}

#[test]
fn errors_are_reported_not_panicked() {
    let store = BlockStore::new(105);
    let pid = store
        .create_partition(PartitionConfig::paper_default(7))
        .unwrap();
    // Reading an unwritten block fails cleanly with a decode error (there
    // is nothing in the tube to amplify... and nothing to decode).
    store
        .write_file(pid, &workload::deterministic_text(BLOCK_SIZE, 70))
        .unwrap();
    let err = store.read_block(pid, 9).unwrap_err();
    assert!(matches!(err, StoreError::DecodeFailed { .. }));
    // Updating an unwritten block is a caller error.
    assert!(matches!(
        store.update_block(pid, 9, &[1, 2, 3]),
        Err(StoreError::BlockNotWritten(9))
    ));
}

#[test]
fn deterministic_replay() {
    // Identical seeds and call sequences produce identical wetlab outcomes.
    let run = || {
        let store = BlockStore::new(106);
        let pid = store
            .create_partition(PartitionConfig::paper_default(8))
            .unwrap();
        let data = workload::deterministic_text(2 * BLOCK_SIZE, 80);
        store.write_file(pid, &data).unwrap();
        let out = store.read_block(pid, 0).unwrap();
        (out.block, out.stats.reads_matched)
    };
    assert_eq!(run(), run());
}
