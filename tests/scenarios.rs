//! End-to-end scenario suite: the store driven the way real workloads
//! drive it — noise sweeps, starved coverage, and mixed read/update/batch
//! traffic over multiple partitions — asserting byte-exact round-trips
//! throughout.

use dna_storage::block_store::{
    batch::BatchPlanner, workload, BatchWindow, BlockStore, CompactionPolicy, PartitionConfig,
    PartitionId, ServerConfig, StoreError, StoreServer, UpdateLayout, BLOCK_SIZE,
};
use dna_storage::sim::{IdsChannel, Sequencer};

/// Scales the Illumina error profile by an integer factor.
fn illumina_scaled(factor: u32) -> IdsChannel {
    let base = IdsChannel::illumina();
    IdsChannel {
        sub_rate: base.sub_rate * f64::from(factor),
        ins_rate: base.ins_rate * f64::from(factor),
        del_rate: base.del_rate * f64::from(factor),
    }
}

#[test]
fn noisy_sequencer_sweep_round_trips() {
    // IDS error sweep: noiseless, Illumina (the paper's wetlab, §6.6),
    // and 2x/4x Illumina failure injection. Coverage grows with the noise
    // level, as a real operator would provision it.
    for (factor, coverage) in [(0u32, 8usize), (1, 12), (2, 16), (4, 24)] {
        let mut store = BlockStore::new(200 + u64::from(factor));
        store.set_sequencer(Sequencer::new(illumina_scaled(factor)));
        store.set_coverage(coverage);
        let pid = store
            .create_partition(PartitionConfig::paper_default(60 + u64::from(factor)))
            .unwrap();
        let data = workload::deterministic_text(3 * BLOCK_SIZE, 90 + u64::from(factor));
        store.write_file(pid, &data).unwrap();
        for b in 0..3u64 {
            let out = store
                .read_block(pid, b)
                .unwrap_or_else(|e| panic!("factor {factor} block {b}: {e}"));
            assert_eq!(
                out.block.data,
                &data[b as usize * BLOCK_SIZE..(b as usize + 1) * BLOCK_SIZE],
                "factor {factor} block {b} not byte-exact"
            );
        }
    }
}

#[test]
fn coverage_starvation_fails_then_recovers() {
    // Starve the sequencer: heavy noise at coverage 1 cannot support
    // trace reconstruction. Reads are non-destructive (PCR amplifies a
    // sample of the archival tube), so re-provisioning coverage on the
    // SAME store recovers the data byte-exactly.
    let mut store = BlockStore::new(205);
    store.set_sequencer(Sequencer::new(illumina_scaled(4)));
    let pid = store
        .create_partition(PartitionConfig::paper_default(61))
        .unwrap();
    let data = workload::deterministic_text(2 * BLOCK_SIZE, 95);
    store.write_file(pid, &data).unwrap();

    store.set_coverage(1);
    let starved = store.read_block(pid, 0);
    assert!(
        matches!(starved, Err(StoreError::DecodeFailed { .. })),
        "starved read should fail cleanly, got {starved:?}"
    );

    store.set_coverage(24);
    let recovered = store.read_block(pid, 0).expect("recovery read");
    assert_eq!(recovered.block.data, &data[..BLOCK_SIZE]);
    // The failed attempt burned a round but corrupted nothing.
    let other = store.read_block(pid, 1).expect("sibling block intact");
    assert_eq!(other.block.data, &data[BLOCK_SIZE..]);
}

#[test]
fn batch_read_beats_sequential_rounds_with_identical_bytes() {
    // The batching acceptance bar, end to end: 8 blocks in one partition
    // in strictly fewer PCR rounds than 8 sequential reads.
    let store = BlockStore::new(206);
    let pid = store
        .create_partition(PartitionConfig::paper_default(62))
        .unwrap();
    let data = workload::deterministic_text(8 * BLOCK_SIZE, 96);
    store.write_file(pid, &data).unwrap();
    let mut sequential_rounds = 0usize;
    let mut sequential = Vec::new();
    for b in 0..8u64 {
        let out = store.read_block(pid, b).unwrap();
        sequential_rounds += out.stats.pcr_rounds;
        sequential.push(out.block);
    }
    let requests: Vec<(PartitionId, u64)> = (0..8u64).map(|b| (pid, b)).collect();
    let batch = store.read_blocks_batch(&requests).unwrap();
    assert!(
        batch.stats.rounds < sequential_rounds,
        "batch {} rounds vs sequential {sequential_rounds}",
        batch.stats.rounds
    );
    for (i, outcome) in batch.outcomes.iter().enumerate() {
        assert_eq!(outcome.as_ref().unwrap().block, sequential[i], "block {i}");
    }
}

#[test]
fn mixed_read_update_batch_interleaving_over_partitions() {
    // Three partitions under three different update layouts, driven by an
    // interleaved stream of writes, updates, single reads, range reads and
    // cross-partition batch reads. Every observation is checked against a
    // shadow model of the logical contents.
    let store = BlockStore::new(207);
    let layouts = [
        UpdateLayout::paper_default(),
        UpdateLayout::TwoStacks,
        UpdateLayout::DedicatedLog,
    ];
    let mut pids = Vec::new();
    let mut shadow: Vec<Vec<u8>> = Vec::new();
    for (i, layout) in layouts.iter().enumerate() {
        let mut cfg = PartitionConfig::paper_default(70 + i as u64);
        cfg.layout = *layout;
        let pid = store.create_partition(cfg).unwrap();
        let data = workload::deterministic_text(3 * BLOCK_SIZE, 100 + i as u64);
        store.write_file(pid, &data).unwrap();
        pids.push(pid);
        shadow.push(data);
    }

    // Update block 1 of each partition (different edit per layout).
    for (i, &pid) in pids.iter().enumerate() {
        let tag = [b'a' + i as u8; 4];
        shadow[i][BLOCK_SIZE + 7..BLOCK_SIZE + 11].copy_from_slice(&tag);
        store
            .update_block(pid, 1, &shadow[i][BLOCK_SIZE..2 * BLOCK_SIZE])
            .unwrap();
    }

    // Single reads observe the updates.
    for (i, &pid) in pids.iter().enumerate() {
        let out = store.read_block(pid, 1).unwrap();
        assert_eq!(
            out.block.data,
            &shadow[i][BLOCK_SIZE..2 * BLOCK_SIZE],
            "layout {i} single read"
        );
        assert_eq!(out.patches_applied, 1);
    }

    // Second round of updates on block 0 of the first partition.
    shadow[0][0..6].copy_from_slice(b"MIXED!");
    store
        .update_block(pids[0], 0, &shadow[0][..BLOCK_SIZE])
        .unwrap();

    // A cross-partition batch read sees every layout's updates at once.
    let requests: Vec<(PartitionId, u64)> = pids
        .iter()
        .flat_map(|&pid| (0..3u64).map(move |b| (pid, b)))
        .collect();
    let batch = store.read_blocks_batch(&requests).unwrap();
    assert!(batch.stats.rounds <= pids.len(), "{:?}", batch.stats);
    for (r, outcome) in batch.outcomes.iter().enumerate() {
        let (p, b) = (r / 3, r % 3);
        let got = outcome.as_ref().unwrap_or_else(|e| panic!("req {r}: {e}"));
        assert_eq!(
            got.block.data,
            &shadow[p][b * BLOCK_SIZE..(b + 1) * BLOCK_SIZE],
            "partition {p} block {b} in batch"
        );
    }

    // Range reads agree with the shadow afterwards (reads perturb nothing).
    for (i, &pid) in pids.iter().enumerate() {
        let blocks = store.read_range(pid, 0, 2).unwrap();
        for (b, block) in blocks.iter().enumerate() {
            assert_eq!(
                block.data,
                &shadow[i][b * BLOCK_SIZE..(b + 1) * BLOCK_SIZE],
                "layout {i} range block {b}"
            );
        }
    }
}

#[test]
fn concurrent_coalescing_beats_sequential_rounds() {
    // PR 2's batch acceptance check, lifted to the serving layer: K
    // concurrent single-block reads from K client threads — spread across
    // primer-compatible partitions — must execute in strictly fewer
    // multiplex rounds than the same K reads issued sequentially, with
    // byte-identical results. The Gate window makes the coalescing
    // deterministic: all K reads are queued before the round is released.
    const K: usize = 6;
    let partitions = 3usize;
    let blocks_per = (K / partitions) as u64;

    // Sequential baseline on a plain store.
    let store = BlockStore::new(209);
    let mut pids = Vec::new();
    let mut shadow = Vec::new();
    for p in 0..partitions {
        let pid = store
            .create_partition(PartitionConfig::paper_default(82 + p as u64))
            .unwrap();
        let data = workload::deterministic_text(blocks_per as usize * BLOCK_SIZE, 120 + p as u64);
        store.write_file(pid, &data).unwrap();
        pids.push(pid);
        shadow.push(data);
    }
    let mut sequential_rounds = 0usize;
    let mut sequential = Vec::new();
    for &pid in &pids {
        for b in 0..blocks_per {
            let out = store.read_block(pid, b).unwrap();
            sequential_rounds += out.stats.pcr_rounds;
            sequential.push(out.block);
        }
    }
    assert_eq!(sequential_rounds, K, "baseline: one round per read");

    // The same store, served concurrently with a gated batching window.
    let server = StoreServer::new(
        store,
        ServerConfig {
            window: BatchWindow::Gate,
            ..ServerConfig::paper_default()
        },
    );
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..K)
            .map(|i| {
                let (server, pids) = (&server, &pids);
                scope.spawn(move || {
                    let (p, b) = (i / blocks_per as usize, (i % blocks_per as usize) as u64);
                    (i, server.read_block(pids[p], b).unwrap())
                })
            })
            .collect();
        // Deterministic coalescing: release the round only once all K
        // reads are queued.
        while server.pending_reads() < K {
            std::thread::yield_now();
        }
        server.release_batch();
        for handle in handles {
            let (i, read) = handle.join().unwrap();
            assert!(!read.from_cache, "first read of each block pays wetlab");
            assert_eq!(read.block, sequential[i], "request {i} content differs");
        }
    });
    let stats = server.stats();
    assert!(
        (stats.rounds_executed as usize) < sequential_rounds,
        "coalesced {} rounds vs sequential {sequential_rounds}",
        stats.rounds_executed
    );
    assert_eq!(stats.batches_executed, 1, "one gated batch");
    assert_eq!(stats.reads_coalesced as usize, K - 1);
    assert_eq!(stats.stale_serves, 0);
}

#[test]
fn forced_single_pair_rounds_still_round_trip() {
    // A planner restricted to one primer pair per tube degenerates to
    // per-partition rounds; contents must not change, only the round count.
    let store = BlockStore::new(208);
    let a = store
        .create_partition(PartitionConfig::paper_default(80))
        .unwrap();
    let b = store
        .create_partition(PartitionConfig::paper_default(81))
        .unwrap();
    let data_a = workload::deterministic_text(2 * BLOCK_SIZE, 110);
    let data_b = workload::deterministic_text(2 * BLOCK_SIZE, 111);
    store.write_file(a, &data_a).unwrap();
    store.write_file(b, &data_b).unwrap();
    let planner = BatchPlanner {
        max_pairs_per_round: 1,
        ..BatchPlanner::paper_default()
    };
    let requests = [(a, 0u64), (a, 1), (b, 0), (b, 1)];
    let strict = store
        .read_blocks_batch_planned(&requests, &planner)
        .unwrap();
    assert_eq!(strict.stats.rounds, 2);
    let relaxed = store.read_blocks_batch(&requests).unwrap();
    assert!(relaxed.stats.rounds <= strict.stats.rounds);
    for (s, r) in strict.outcomes.iter().zip(&relaxed.outcomes) {
        assert_eq!(
            s.as_ref().unwrap().block,
            r.as_ref().unwrap().block,
            "round packing must not change contents"
        );
    }
    assert_eq!(
        strict.outcomes[0].as_ref().unwrap().block.data,
        &data_a[..BLOCK_SIZE]
    );
    assert_eq!(
        strict.outcomes[3].as_ref().unwrap().block.data,
        &data_b[BLOCK_SIZE..]
    );
}

// ----- compaction & consolidation lifecycle --------------------------------

/// The three layouts under sustained-update pressure, small enough to
/// exhaust within a test budget: 64-leaf partitions with a 16-leaf shared
/// log. Depth 3 keeps the 6-base leaf indexes discriminating — at depth 2
/// the 4-base indexes alias across subtrees under sequencing indels — and
/// the data population is kept moderate (20 of 64 leaves), matching the
/// sparse occupancy real deployments provision: a densely packed address
/// space multiplies the §8.1 chimera families a precise read must defeat.
const COMPACTION_LAYOUTS: [UpdateLayout; 3] = [
    UpdateLayout::Interleaved { update_slots: 3 },
    UpdateLayout::TwoStacks,
    UpdateLayout::DedicatedLog,
];

/// Data blocks written into each compaction-scenario partition.
const DATA_BLOCKS: usize = 20;

fn small_update_store(seed: u64, layout: UpdateLayout) -> (BlockStore, PartitionId, Vec<u8>) {
    let mut store = BlockStore::new(seed);
    // A fully-saturated update region (the exhaustion scenarios read at
    // max patch depth) needs real-operator coverage provisioning.
    store.set_coverage(28);
    store
        .set_log_partition_config(PartitionConfig::small(
            seed ^ 0x10,
            2,
            UpdateLayout::paper_default(),
        ))
        .unwrap();
    let pid = store
        .create_partition(PartitionConfig::small(seed ^ 0x11, 3, layout))
        .unwrap();
    let data = workload::deterministic_text(DATA_BLOCKS * BLOCK_SIZE, seed ^ 0x12);
    store.write_file(pid, &data).unwrap();
    (store, pid, data)
}

/// Mutates one byte of `data`'s block 0 per round so every update carries a
/// real (non-identity) patch.
fn next_edit(data: &mut [u8], round: u32) {
    data[(round % 8) as usize] = b'a' + (round % 26) as u8;
}

/// Drives updates of block 0 until the store refuses, returning how many
/// committed.
fn updates_until_exhaustion(
    store: &mut BlockStore,
    pid: PartitionId,
    data: &mut [u8],
) -> (u32, StoreError) {
    for round in 0..200u32 {
        next_edit(data, round);
        if let Err(err) = store.update_block(pid, 0, &data[..BLOCK_SIZE]) {
            return (round, err);
        }
    }
    panic!("no exhaustion within 200 updates");
}

#[test]
fn sustained_updates_exhaust_every_layout_without_compaction() {
    // ISSUE acceptance (a): without compaction, a sustained update workload
    // hits UpdateSlotsExhausted on all three layouts — and the error now
    // says which layout, how long the chain grew, and that headroom is 0.
    for (i, layout) in COMPACTION_LAYOUTS.into_iter().enumerate() {
        let (mut store, pid, mut data) = small_update_store(0x300 + i as u64, layout);
        let predicted = store.update_headroom(pid, 0).unwrap();
        let (committed, err) = updates_until_exhaustion(&mut store, pid, &mut data);
        assert_eq!(
            u64::from(committed),
            predicted,
            "{layout}: update_headroom must predict exhaustion exactly"
        );
        match err {
            StoreError::UpdateSlotsExhausted {
                block: 0,
                layout: err_layout,
                chain_len,
                headroom: 0,
            } => {
                assert_eq!(err_layout, layout);
                assert!(chain_len > 0, "{layout}: some chain/stack/log context");
            }
            other => panic!("{layout}: expected UpdateSlotsExhausted, got {other}"),
        }
        // The store is read-only for updates but still serves correct bytes.
        let out = store.read_block(pid, 0).unwrap();
        assert_eq!(out.block.data, store.logical_block(pid, 0).unwrap().data);
    }
}

#[test]
fn compaction_policy_keeps_the_same_workload_alive_through_the_server() {
    // ISSUE acceptance (b), serving layer: the workload that exhausted
    // every layout above now runs past that bound — the server compacts
    // before any update would starve — and every read stays byte-identical
    // to the digital oracle (stale_serves == 0).
    for (i, layout) in COMPACTION_LAYOUTS.into_iter().enumerate() {
        let seed = 0x310 + i as u64;
        // Measure the no-compaction exhaustion bound on a twin store.
        let (mut twin, twin_pid, mut twin_data) = small_update_store(seed, layout);
        let (exhausted_at, _) = updates_until_exhaustion(&mut twin, twin_pid, &mut twin_data);

        let (store, pid, mut data) = small_update_store(seed, layout);
        let config = ServerConfig {
            window: BatchWindow::Immediate,
            compaction: Some(CompactionPolicy::headroom_only(2)),
            ..ServerConfig::paper_default()
        };
        let server = StoreServer::new(store, config);
        for round in 0..exhausted_at + 5 {
            next_edit(&mut data, round);
            server
                .update_block(pid, 0, &data[..BLOCK_SIZE])
                .unwrap_or_else(|e| panic!("{layout}: update {round} failed: {e}"));
        }
        let stats = server.stats();
        assert!(
            stats.compactions >= 1,
            "{layout}: the workload must have forced maintenance: {stats:?}"
        );
        assert!(stats.units_reclaimed > 0, "{layout}: {stats:?}");
        assert_eq!(
            stats.updates_applied,
            u64::from(exhausted_at + 5),
            "{layout}: every update past the exhaustion bound must commit"
        );
        // Cold read, then warm read, of every block: byte-identical to the
        // oracle, never stale.
        let store_oracle: Vec<Vec<u8>> = {
            let mut expected = workload::deterministic_text(DATA_BLOCKS * BLOCK_SIZE, seed ^ 0x12);
            expected[..BLOCK_SIZE].copy_from_slice(&data[..BLOCK_SIZE]);
            expected.chunks(BLOCK_SIZE).map(<[u8]>::to_vec).collect()
        };
        for pass in 0..2 {
            for b in 0..4u64 {
                let read = server
                    .read_block(pid, b)
                    .unwrap_or_else(|e| panic!("{layout}: pass {pass} block {b}: {e}"));
                assert_eq!(
                    read.block.data, store_oracle[b as usize],
                    "{layout}: pass {pass} block {b} differs from the oracle"
                );
            }
        }
        let stats = server.stats();
        assert_eq!(stats.stale_serves, 0, "{layout}: {stats:?}");
        assert_eq!(stats.reads_served, stats.cache_hits + stats.cache_misses);
    }
}

#[test]
fn compaction_lowers_hot_block_batch_read_cost() {
    // ISSUE acceptance (b), cost half: immediately before compaction a hot
    // block's batched read pays for its accumulated update scope; right
    // after compaction the same read sequences strictly fewer reads, with
    // identical bytes.
    for (i, layout) in COMPACTION_LAYOUTS.into_iter().enumerate() {
        let (store, pid, mut data) = small_update_store(0x320 + i as u64, layout);
        for round in 0..8u32 {
            next_edit(&mut data, round);
            store.update_block(pid, 0, &data[..BLOCK_SIZE]).unwrap();
        }
        let requests = [(pid, 0u64)];
        let pre = store.read_blocks_batch(&requests).unwrap();
        let pre_block = pre.outcomes[0].as_ref().unwrap();
        assert_eq!(pre_block.block.data, &data[..BLOCK_SIZE]);
        assert_eq!(pre_block.patches_applied, 8, "{layout}");

        let report = store.compact_partition(pid).unwrap();
        assert!(report.units_reclaimed >= 8, "{layout}: {report:?}");
        assert!(report.rewrites_synthesized >= 1, "{layout}");

        let post = store.read_blocks_batch(&requests).unwrap();
        let post_block = post.outcomes[0].as_ref().unwrap();
        assert_eq!(
            post_block.block.data,
            &data[..BLOCK_SIZE],
            "{layout}: rebased bytes must match"
        );
        assert_eq!(post_block.patches_applied, 0, "{layout}: chain folded");
        assert!(
            post.stats.reads_sequenced < pre.stats.reads_sequenced,
            "{layout}: post-compaction read must sequence fewer reads \
             ({} vs {})",
            post.stats.reads_sequenced,
            pre.stats.reads_sequenced
        );
        assert!(
            post.stats.rounds <= pre.stats.rounds,
            "{layout}: never more rounds after compaction"
        );
    }
}
