//! End-to-end scenario suite: the store driven the way real workloads
//! drive it — noise sweeps, starved coverage, and mixed read/update/batch
//! traffic over multiple partitions — asserting byte-exact round-trips
//! throughout.

use dna_storage::block_store::{
    batch::BatchPlanner, workload, BatchWindow, BlockStore, PartitionConfig, PartitionId,
    ServerConfig, StoreError, StoreServer, UpdateLayout, BLOCK_SIZE,
};
use dna_storage::sim::{IdsChannel, Sequencer};

/// Scales the Illumina error profile by an integer factor.
fn illumina_scaled(factor: u32) -> IdsChannel {
    let base = IdsChannel::illumina();
    IdsChannel {
        sub_rate: base.sub_rate * f64::from(factor),
        ins_rate: base.ins_rate * f64::from(factor),
        del_rate: base.del_rate * f64::from(factor),
    }
}

#[test]
fn noisy_sequencer_sweep_round_trips() {
    // IDS error sweep: noiseless, Illumina (the paper's wetlab, §6.6),
    // and 2x/4x Illumina failure injection. Coverage grows with the noise
    // level, as a real operator would provision it.
    for (factor, coverage) in [(0u32, 8usize), (1, 12), (2, 16), (4, 24)] {
        let mut store = BlockStore::new(200 + u64::from(factor));
        store.set_sequencer(Sequencer::new(illumina_scaled(factor)));
        store.set_coverage(coverage);
        let pid = store
            .create_partition(PartitionConfig::paper_default(60 + u64::from(factor)))
            .unwrap();
        let data = workload::deterministic_text(3 * BLOCK_SIZE, 90 + u64::from(factor));
        store.write_file(pid, &data).unwrap();
        for b in 0..3u64 {
            let out = store
                .read_block(pid, b)
                .unwrap_or_else(|e| panic!("factor {factor} block {b}: {e}"));
            assert_eq!(
                out.block.data,
                &data[b as usize * BLOCK_SIZE..(b as usize + 1) * BLOCK_SIZE],
                "factor {factor} block {b} not byte-exact"
            );
        }
    }
}

#[test]
fn coverage_starvation_fails_then_recovers() {
    // Starve the sequencer: heavy noise at coverage 1 cannot support
    // trace reconstruction. Reads are non-destructive (PCR amplifies a
    // sample of the archival tube), so re-provisioning coverage on the
    // SAME store recovers the data byte-exactly.
    let mut store = BlockStore::new(205);
    store.set_sequencer(Sequencer::new(illumina_scaled(4)));
    let pid = store
        .create_partition(PartitionConfig::paper_default(61))
        .unwrap();
    let data = workload::deterministic_text(2 * BLOCK_SIZE, 95);
    store.write_file(pid, &data).unwrap();

    store.set_coverage(1);
    let starved = store.read_block(pid, 0);
    assert!(
        matches!(starved, Err(StoreError::DecodeFailed { .. })),
        "starved read should fail cleanly, got {starved:?}"
    );

    store.set_coverage(24);
    let recovered = store.read_block(pid, 0).expect("recovery read");
    assert_eq!(recovered.block.data, &data[..BLOCK_SIZE]);
    // The failed attempt burned a round but corrupted nothing.
    let other = store.read_block(pid, 1).expect("sibling block intact");
    assert_eq!(other.block.data, &data[BLOCK_SIZE..]);
}

#[test]
fn batch_read_beats_sequential_rounds_with_identical_bytes() {
    // The batching acceptance bar, end to end: 8 blocks in one partition
    // in strictly fewer PCR rounds than 8 sequential reads.
    let mut store = BlockStore::new(206);
    let pid = store
        .create_partition(PartitionConfig::paper_default(62))
        .unwrap();
    let data = workload::deterministic_text(8 * BLOCK_SIZE, 96);
    store.write_file(pid, &data).unwrap();
    let mut sequential_rounds = 0usize;
    let mut sequential = Vec::new();
    for b in 0..8u64 {
        let out = store.read_block(pid, b).unwrap();
        sequential_rounds += out.stats.pcr_rounds;
        sequential.push(out.block);
    }
    let requests: Vec<(PartitionId, u64)> = (0..8u64).map(|b| (pid, b)).collect();
    let batch = store.read_blocks_batch(&requests).unwrap();
    assert!(
        batch.stats.rounds < sequential_rounds,
        "batch {} rounds vs sequential {sequential_rounds}",
        batch.stats.rounds
    );
    for (i, outcome) in batch.outcomes.iter().enumerate() {
        assert_eq!(outcome.as_ref().unwrap().block, sequential[i], "block {i}");
    }
}

#[test]
fn mixed_read_update_batch_interleaving_over_partitions() {
    // Three partitions under three different update layouts, driven by an
    // interleaved stream of writes, updates, single reads, range reads and
    // cross-partition batch reads. Every observation is checked against a
    // shadow model of the logical contents.
    let mut store = BlockStore::new(207);
    let layouts = [
        UpdateLayout::paper_default(),
        UpdateLayout::TwoStacks,
        UpdateLayout::DedicatedLog,
    ];
    let mut pids = Vec::new();
    let mut shadow: Vec<Vec<u8>> = Vec::new();
    for (i, layout) in layouts.iter().enumerate() {
        let mut cfg = PartitionConfig::paper_default(70 + i as u64);
        cfg.layout = *layout;
        let pid = store.create_partition(cfg).unwrap();
        let data = workload::deterministic_text(3 * BLOCK_SIZE, 100 + i as u64);
        store.write_file(pid, &data).unwrap();
        pids.push(pid);
        shadow.push(data);
    }

    // Update block 1 of each partition (different edit per layout).
    for (i, &pid) in pids.iter().enumerate() {
        let tag = [b'a' + i as u8; 4];
        shadow[i][BLOCK_SIZE + 7..BLOCK_SIZE + 11].copy_from_slice(&tag);
        store
            .update_block(pid, 1, &shadow[i][BLOCK_SIZE..2 * BLOCK_SIZE])
            .unwrap();
    }

    // Single reads observe the updates.
    for (i, &pid) in pids.iter().enumerate() {
        let out = store.read_block(pid, 1).unwrap();
        assert_eq!(
            out.block.data,
            &shadow[i][BLOCK_SIZE..2 * BLOCK_SIZE],
            "layout {i} single read"
        );
        assert_eq!(out.patches_applied, 1);
    }

    // Second round of updates on block 0 of the first partition.
    shadow[0][0..6].copy_from_slice(b"MIXED!");
    store
        .update_block(pids[0], 0, &shadow[0][..BLOCK_SIZE])
        .unwrap();

    // A cross-partition batch read sees every layout's updates at once.
    let requests: Vec<(PartitionId, u64)> = pids
        .iter()
        .flat_map(|&pid| (0..3u64).map(move |b| (pid, b)))
        .collect();
    let batch = store.read_blocks_batch(&requests).unwrap();
    assert!(batch.stats.rounds <= pids.len(), "{:?}", batch.stats);
    for (r, outcome) in batch.outcomes.iter().enumerate() {
        let (p, b) = (r / 3, r % 3);
        let got = outcome.as_ref().unwrap_or_else(|e| panic!("req {r}: {e}"));
        assert_eq!(
            got.block.data,
            &shadow[p][b * BLOCK_SIZE..(b + 1) * BLOCK_SIZE],
            "partition {p} block {b} in batch"
        );
    }

    // Range reads agree with the shadow afterwards (reads perturb nothing).
    for (i, &pid) in pids.iter().enumerate() {
        let blocks = store.read_range(pid, 0, 2).unwrap();
        for (b, block) in blocks.iter().enumerate() {
            assert_eq!(
                block.data,
                &shadow[i][b * BLOCK_SIZE..(b + 1) * BLOCK_SIZE],
                "layout {i} range block {b}"
            );
        }
    }
}

#[test]
fn concurrent_coalescing_beats_sequential_rounds() {
    // PR 2's batch acceptance check, lifted to the serving layer: K
    // concurrent single-block reads from K client threads — spread across
    // primer-compatible partitions — must execute in strictly fewer
    // multiplex rounds than the same K reads issued sequentially, with
    // byte-identical results. The Gate window makes the coalescing
    // deterministic: all K reads are queued before the round is released.
    const K: usize = 6;
    let partitions = 3usize;
    let blocks_per = (K / partitions) as u64;

    // Sequential baseline on a plain store.
    let mut store = BlockStore::new(209);
    let mut pids = Vec::new();
    let mut shadow = Vec::new();
    for p in 0..partitions {
        let pid = store
            .create_partition(PartitionConfig::paper_default(82 + p as u64))
            .unwrap();
        let data = workload::deterministic_text(blocks_per as usize * BLOCK_SIZE, 120 + p as u64);
        store.write_file(pid, &data).unwrap();
        pids.push(pid);
        shadow.push(data);
    }
    let mut sequential_rounds = 0usize;
    let mut sequential = Vec::new();
    for &pid in &pids {
        for b in 0..blocks_per {
            let out = store.read_block(pid, b).unwrap();
            sequential_rounds += out.stats.pcr_rounds;
            sequential.push(out.block);
        }
    }
    assert_eq!(sequential_rounds, K, "baseline: one round per read");

    // The same store, served concurrently with a gated batching window.
    let server = StoreServer::new(
        store,
        ServerConfig {
            window: BatchWindow::Gate,
            ..ServerConfig::paper_default()
        },
    );
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..K)
            .map(|i| {
                let (server, pids) = (&server, &pids);
                scope.spawn(move || {
                    let (p, b) = (i / blocks_per as usize, (i % blocks_per as usize) as u64);
                    (i, server.read_block(pids[p], b).unwrap())
                })
            })
            .collect();
        // Deterministic coalescing: release the round only once all K
        // reads are queued.
        while server.pending_reads() < K {
            std::thread::yield_now();
        }
        server.release_batch();
        for handle in handles {
            let (i, read) = handle.join().unwrap();
            assert!(!read.from_cache, "first read of each block pays wetlab");
            assert_eq!(read.block, sequential[i], "request {i} content differs");
        }
    });
    let stats = server.stats();
    assert!(
        (stats.rounds_executed as usize) < sequential_rounds,
        "coalesced {} rounds vs sequential {sequential_rounds}",
        stats.rounds_executed
    );
    assert_eq!(stats.batches_executed, 1, "one gated batch");
    assert_eq!(stats.reads_coalesced as usize, K - 1);
    assert_eq!(stats.stale_serves, 0);
}

#[test]
fn forced_single_pair_rounds_still_round_trip() {
    // A planner restricted to one primer pair per tube degenerates to
    // per-partition rounds; contents must not change, only the round count.
    let mut store = BlockStore::new(208);
    let a = store
        .create_partition(PartitionConfig::paper_default(80))
        .unwrap();
    let b = store
        .create_partition(PartitionConfig::paper_default(81))
        .unwrap();
    let data_a = workload::deterministic_text(2 * BLOCK_SIZE, 110);
    let data_b = workload::deterministic_text(2 * BLOCK_SIZE, 111);
    store.write_file(a, &data_a).unwrap();
    store.write_file(b, &data_b).unwrap();
    let planner = BatchPlanner {
        max_pairs_per_round: 1,
        ..BatchPlanner::paper_default()
    };
    let requests = [(a, 0u64), (a, 1), (b, 0), (b, 1)];
    let strict = store
        .read_blocks_batch_planned(&requests, &planner)
        .unwrap();
    assert_eq!(strict.stats.rounds, 2);
    let relaxed = store.read_blocks_batch(&requests).unwrap();
    assert!(relaxed.stats.rounds <= strict.stats.rounds);
    for (s, r) in strict.outcomes.iter().zip(&relaxed.outcomes) {
        assert_eq!(
            s.as_ref().unwrap().block,
            r.as_ref().unwrap().block,
            "round packing must not change contents"
        );
    }
    assert_eq!(
        strict.outcomes[0].as_ref().unwrap().block.data,
        &data_a[..BLOCK_SIZE]
    );
    assert_eq!(
        strict.outcomes[3].as_ref().unwrap().block.data,
        &data_b[BLOCK_SIZE..]
    );
}
