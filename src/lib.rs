//! # dna-storage
//!
//! A production-quality Rust reproduction of **"Efficiently Enabling Block
//! Semantics and Data Updates in DNA Storage"** (MICRO 2023). This meta-crate
//! re-exports every layer of the stack under one import:
//!
//! - [`seq`] — DNA alphabet, sequences, distances, deterministic PRNGs
//! - [`codec`] — binary↔DNA codecs and the strand layout
//! - [`ecc`] — Reed-Solomon ECC and the encoding-unit matrix
//! - [`index`] — PCR-navigable sparse index trees and prefix covers
//! - [`primers`] — primer constraints, libraries, and elongation
//! - [`sim`] — the wetlab simulator (pools, synthesis, PCR, sequencing,
//!   mixing protocols)
//! - [`pipeline`] — read recovery: filtering, clustering, trace
//!   reconstruction, decoding
//! - [`block_store`] — the paper's contribution: partitions with block
//!   read/write semantics and versioned updates
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end walk-through: create a
//! partition, store a file, retrieve one block with an elongated primer, and
//! apply an update patch.

#![forbid(unsafe_code)]

pub use dna_block_store as block_store;
pub use dna_codec as codec;
pub use dna_ecc as ecc;
pub use dna_index as index;
pub use dna_pipeline as pipeline;
pub use dna_primers as primers;
pub use dna_seq as seq;
pub use dna_sim as sim;
